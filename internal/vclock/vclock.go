// Package vclock provides the clock substrate for BRISK.
//
// The paper's sensors obtain raw local time from gettimeofday and the
// external sensor maintains a correction value that is added to embedded
// timestamps before records are shipped to the manager. Reproducing the
// clock-synchronization evaluation requires nodes whose clocks disagree
// and drift, which real test processes on one host do not exhibit; this
// package therefore models clocks explicitly:
//
//   - System is the real wall clock (gettimeofday equivalent).
//   - Manual is a hand-stepped clock for deterministic tests and the
//     discrete-event simulator.
//   - Drift derives a skewed, drifting node clock from a reference clock,
//     simulating an unsynchronized workstation.
//   - Noisy overlays bounded, seeded read noise on any clock, modelling a
//     cheap oscillator; readings never run backwards.
//   - Corrected layers the external sensor's correction value over any raw
//     clock; the clock-synchronization slave adjusts it.
//
// All clocks report microseconds of UTC as int64, the paper's eight-byte
// timestamp unit.
package vclock

import (
	"sync"
	"sync/atomic"
	"time"

	"brisk/internal/des"
)

// Clock supplies the current time in microseconds of UTC.
type Clock interface {
	NowMicros() int64
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() int64

// NowMicros implements Clock.
func (f ClockFunc) NowMicros() int64 { return f() }

// System is the real wall clock.
type System struct{}

// NowMicros returns the current wall-clock time in microseconds of UTC.
func (System) NowMicros() int64 { return time.Now().UnixMicro() }

// Manual is a thread-safe, hand-stepped clock. The zero value reads zero
// until stepped. It never moves on its own.
type Manual struct {
	now atomic.Int64
}

// NewManual returns a Manual clock initialized to start microseconds.
func NewManual(start int64) *Manual {
	m := &Manual{}
	m.now.Store(start)
	return m
}

// NowMicros returns the clock's current reading.
func (m *Manual) NowMicros() int64 { return m.now.Load() }

// Set moves the clock to t microseconds.
func (m *Manual) Set(t int64) { m.now.Store(t) }

// Advance moves the clock forward by d microseconds and returns the new
// reading.
func (m *Manual) Advance(d int64) int64 { return m.now.Add(d) }

// Drift models an unsynchronized node clock: a reference ("true") clock
// observed through an initial offset and a constant frequency error in
// parts per million. A positive drift of 50 ppm gains 50 µs per true
// second. Step adjustments (from the synchronization algorithm) accumulate
// into the offset.
type Drift struct {
	mu       sync.Mutex
	ref      Clock
	epoch    int64 // reference reading at construction
	offset   int64 // microseconds ahead of the reference at the epoch
	driftPPM float64
}

// NewDrift returns a clock derived from ref with the given initial offset
// (µs) and frequency error (ppm).
func NewDrift(ref Clock, offsetMicros int64, driftPPM float64) *Drift {
	return &Drift{ref: ref, epoch: ref.NowMicros(), offset: offsetMicros, driftPPM: driftPPM}
}

// NowMicros returns the skewed reading.
func (d *Drift) NowMicros() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	elapsed := d.ref.NowMicros() - d.epoch
	return d.epoch + d.offset + elapsed + int64(float64(elapsed)*d.driftPPM*1e-6)
}

// Step adds delta microseconds to the clock, as a synchronization
// adjustment would.
func (d *Drift) Step(delta int64) {
	d.mu.Lock()
	d.offset += delta
	d.mu.Unlock()
}

// SkewAgainstRef returns the clock's current offset from its reference.
func (d *Drift) SkewAgainstRef() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	elapsed := d.ref.NowMicros() - d.epoch
	return d.offset + int64(float64(elapsed)*d.driftPPM*1e-6)
}

// Noisy overlays a clock with non-negative seeded read noise, modelling a
// cheap oscillator whose reads wobble: each reading adds an exponential
// draw with the given mean, clamped so the clock never runs backwards.
// The draw stream is deterministic per seed, so simulated regimes replay
// exactly. Safe for concurrent use.
type Noisy struct {
	mu   sync.Mutex
	raw  Clock
	rng  *des.RNG
	mean float64
	last int64
}

// NewNoisy wraps raw with exponential read noise of the given mean (µs),
// drawn from the seeded stream. A mean of 0 passes readings through
// (still monotone-clamped).
func NewNoisy(raw Clock, meanMicros float64, seed uint64) *Noisy {
	return &Noisy{raw: raw, rng: des.NewRNG(seed), mean: meanMicros}
}

// NowMicros returns the noisy, monotone-clamped reading.
func (n *Noisy) NowMicros() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	t := n.raw.NowMicros()
	if n.mean > 0 {
		t += int64(n.rng.Exp(n.mean))
	}
	if t < n.last {
		t = n.last
	}
	n.last = t
	return t
}

// Corrected layers the external sensor's correction value over a raw
// clock. Sensors write raw timestamps; the EXS adds Correction() before
// shipping records, and the synchronization slave calls Adjust when told
// to advance. Reads and adjustments are lock-free.
//
// Beyond the step correction, Corrected can extrapolate: the model-based
// synchronization master estimates each slave's drift against the round's
// reference clock and tells the slave to advance continuously at that rate
// (SetRatePPM) between probes, so skew no longer grows linearly over a
// probe gap. The rate is clamped non-negative — like step adjustments, the
// extrapolation only ever moves the corrected clock forward, preserving
// BRISK's never-set-back invariant (timestamp order within a node).
type Corrected struct {
	raw        Clock
	correction atomic.Int64
	rate       atomic.Pointer[rateState]
}

// rateState is one immutable extrapolation regime: at raw reading epoch
// the extrapolation had contributed base microseconds, and from there the
// corrected clock gains ppm microseconds per raw second. Replacing the
// regime is a single pointer store whose value is continuous at the
// switch instant, so concurrent readers never see the clock jump.
type rateState struct {
	ppm   float64
	epoch int64
	base  int64
}

// at returns the extrapolation contribution at raw reading r.
func (rs *rateState) at(r int64) int64 {
	if rs == nil {
		return 0
	}
	if d := r - rs.epoch; d > 0 {
		return rs.base + int64(float64(d)*rs.ppm*1e-6)
	}
	return rs.base
}

// NewCorrected wraps raw with a zero correction.
func NewCorrected(raw Clock) *Corrected {
	return &Corrected{raw: raw}
}

// NowMicros returns the corrected time: raw reading plus the step
// correction plus any rate extrapolation accrued since the rate was set.
func (c *Corrected) NowMicros() int64 {
	r := c.raw.NowMicros()
	return r + c.correction.Load() + c.rate.Load().at(r)
}

// Raw returns the underlying clock's uncorrected reading.
func (c *Corrected) Raw() int64 { return c.raw.NowMicros() }

// Correction returns the current effective correction value in
// microseconds: the step corrections plus accrued extrapolation.
func (c *Corrected) Correction() int64 {
	rs := c.rate.Load()
	if rs == nil {
		return c.correction.Load()
	}
	return c.correction.Load() + rs.at(c.raw.NowMicros())
}

// Adjust adds delta microseconds to the correction value and returns the
// new effective correction.
func (c *Corrected) Adjust(delta int64) int64 {
	v := c.correction.Add(delta)
	if rs := c.rate.Load(); rs != nil {
		v += rs.at(c.raw.NowMicros())
	}
	return v
}

// SetRatePPM replaces the extrapolation rate (µs gained per raw second).
// The new regime starts from the extrapolation value the old one reached,
// so the corrected reading is continuous across the switch and — with the
// rate clamped at zero — never moves backwards. SetRatePPM is meant to be
// called from the slave's single control loop; reads are safe anytime.
func (c *Corrected) SetRatePPM(ppm float64) {
	if ppm < 0 {
		ppm = 0
	}
	old := c.rate.Load()
	if ppm == 0 && old == nil {
		return
	}
	r := c.raw.NowMicros()
	c.rate.Store(&rateState{ppm: ppm, epoch: r, base: old.at(r)})
}

// RatePPM returns the current extrapolation rate.
func (c *Corrected) RatePPM() float64 {
	if rs := c.rate.Load(); rs != nil {
		return rs.ppm
	}
	return 0
}
