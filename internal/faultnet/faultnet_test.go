package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func newProxy(t *testing.T) *Proxy {
	t.Helper()
	srv := echoServer(t)
	p, err := Listen(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPassThrough(t *testing.T) {
	p := newProxy(t)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
	if p.BytesUp() != int64(len(msg)) || p.BytesDown() != int64(len(msg)) {
		t.Fatalf("counters up=%d down=%d, want %d", p.BytesUp(), p.BytesDown(), len(msg))
	}
}

// TestCutAfterExactBytes verifies the byte-deterministic cut: exactly N
// upstream bytes pass, then both sides of the link die.
func TestCutAfterExactBytes(t *testing.T) {
	// A sink server that records everything it receives.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		data []byte
		err  error
	}
	sunk := make(chan result, 4)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				data, err := io.ReadAll(c)
				sunk <- result{data, err}
			}()
		}
	}()

	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p.CutAfter(5)
	if _, err := c.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	// The server sees exactly the first 5 bytes, then EOF from the cut.
	r := <-sunk
	if string(r.data) != "01234" {
		t.Fatalf("server received %q, want %q", r.data, "01234")
	}
	// The client side of the link is dead too.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("link survived the armed cut")
	}
	if p.BytesUp() != 5 {
		t.Fatalf("BytesUp = %d, want 5", p.BytesUp())
	}
	if p.Cuts() != 1 {
		t.Fatalf("Cuts = %d, want 1", p.Cuts())
	}
	// The budget is one-shot: a new connection relays freely again.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	r2 := <-sunk
	if string(r2.data) != "abcdefgh" {
		t.Fatalf("post-cut connection relayed %q", r2.data)
	}
}

func TestCutNowSeversActiveLinks(t *testing.T) {
	p := newProxy(t)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	p.CutNow()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded after CutNow")
	}
}

// TestRefuseAcceptWindow verifies connections die during the window and
// flow again after it closes.
func TestRefuseAcceptWindow(t *testing.T) {
	p := newProxy(t)
	p.SetAccepting(false)
	c, err := net.Dial("tcp", p.Addr())
	if err == nil {
		// The OS accepts, the proxy slams the door: first use fails.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, rerr := c.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("refused connection delivered data")
		}
		c.Close()
	}
	if p.Refused() == 0 {
		t.Fatal("refusal not counted")
	}

	p.SetAccepting(true)
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c2, got); err != nil {
		t.Fatalf("post-window connection blocked: %v", err)
	}
}

// TestStallHoldsBytesWithoutClosing verifies a stalled proxy neither
// closes the link nor delivers data, and releases everything on unstall.
func TestStallHoldsBytesWithoutClosing(t *testing.T) {
	p := newProxy(t)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Prime the link so both pumps are running.
	if _, err := c.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}

	p.Stall(true)
	if _, err := c.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("stalled proxy delivered data")
	}

	p.Stall(false)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := make([]byte, 1)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("unstall did not release data: %v", err)
	}
	if got[0] != 'b' {
		t.Fatalf("got %q after unstall, want 'b'", got)
	}
}

func TestCloseIdempotentAndUnblocksStall(t *testing.T) {
	p := newProxy(t)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	p.Stall(true)
	done := make(chan struct{})
	go func() {
		p.Close()
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a stalled pump")
	}
}
