// Package faultnet is a test-only TCP proxy with scriptable faults, so
// resilience tests can sever, stall, slow, or refuse links at exact,
// reproducible points instead of sleeping and hoping.
//
// A Proxy listens on an ephemeral localhost port and relays every
// accepted connection to a fixed target address. Faults are scripted
// through its methods:
//
//   - CutAfter(n): sever every link once n more upstream (client→server)
//     bytes have been relayed — byte-deterministic mid-stream cuts.
//   - CutNow: sever all active links immediately.
//   - SetAccepting(false): a refuse-accept window — new connections are
//     accepted by the OS listener and instantly closed, so clients see a
//     handshake failure rather than a hung dial.
//   - Stall(true): stop relaying without closing anything, simulating a
//     wedged peer (the half-open-connection case heartbeats exist for).
//   - SetLatency(d): add a fixed one-way delay per relayed read.
//
// All byte counters are monotonic, so tests can anchor CutAfter to the
// current BytesUp reading.
package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is one scriptable relay. Create with Listen, stop with Close.
type Proxy struct {
	ln     net.Listener
	target string

	mu        sync.Mutex
	accepting bool
	latency   time.Duration
	cutBudget int64         // upstream bytes until an automatic cut; -1 disarmed
	unstall   chan struct{} // closed while relaying is allowed
	links     map[*link]struct{}

	bytesUp   atomic.Int64
	bytesDown atomic.Int64
	accepted  atomic.Int64
	refused   atomic.Int64
	cuts      atomic.Int64

	closed atomic.Bool
	wg     sync.WaitGroup
}

// link is one client↔server connection pair.
type link struct {
	client net.Conn
	server net.Conn
	once   sync.Once
}

// sever closes both sides of the link exactly once.
func (l *link) sever() {
	l.once.Do(func() {
		l.client.Close()
		l.server.Close()
	})
}

// Listen starts a proxy relaying to target on an ephemeral localhost
// port.
func Listen(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	unstall := make(chan struct{})
	close(unstall)
	p := &Proxy{
		ln:        ln,
		target:    target,
		accepting: true,
		cutBudget: -1,
		unstall:   unstall,
		links:     make(map[*link]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; point clients here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// BytesUp returns total client→server bytes relayed.
func (p *Proxy) BytesUp() int64 { return p.bytesUp.Load() }

// BytesDown returns total server→client bytes relayed.
func (p *Proxy) BytesDown() int64 { return p.bytesDown.Load() }

// Accepted returns how many connections were accepted and relayed.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Refused returns how many connections were turned away by a
// refuse-accept window.
func (p *Proxy) Refused() int64 { return p.refused.Load() }

// Cuts returns how many times the proxy severed its links (CutNow calls
// that found live links, plus triggered CutAfter budgets).
func (p *Proxy) Cuts() int64 { return p.cuts.Load() }

// ActiveLinks returns the number of currently relayed connections.
func (p *Proxy) ActiveLinks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// SetAccepting opens (true) or closes (false) the accept window. While
// closed, new connections are immediately dropped.
func (p *Proxy) SetAccepting(ok bool) {
	p.mu.Lock()
	p.accepting = ok
	p.mu.Unlock()
}

// SetLatency adds a fixed one-way delay to every relayed read in both
// directions. Zero disables.
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// Stall pauses (true) or resumes (false) relaying on all links without
// closing them — bytes pile up untransmitted, as on a wedged peer.
func (p *Proxy) Stall(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	stalled := !isClosed(p.unstall)
	if on && !stalled {
		p.unstall = make(chan struct{})
	} else if !on && stalled {
		close(p.unstall)
	}
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// CutAfter arms a one-shot cut: after n more upstream (client→server)
// bytes are relayed, every link is severed. The byte at which the cut
// lands is exact, so a test can cut mid-frame deterministically.
func (p *Proxy) CutAfter(n int64) {
	p.mu.Lock()
	p.cutBudget = n
	p.mu.Unlock()
}

// CutNow severs every active link immediately. The listener stays up, so
// clients may reconnect (subject to the accept window).
func (p *Proxy) CutNow() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	if len(links) > 0 {
		p.cuts.Add(1)
	}
	for _, l := range links {
		l.sever()
	}
}

// Close stops accepting, severs all links, and waits for the relay
// goroutines to exit.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.Stall(false) // release pumps blocked on a stall
	p.CutNow()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		ok := p.accepting
		p.mu.Unlock()
		if !ok {
			p.refused.Add(1)
			c.Close()
			continue
		}
		s, err := net.Dial("tcp", p.target)
		if err != nil {
			p.refused.Add(1)
			c.Close()
			continue
		}
		l := &link{client: c, server: s}
		p.mu.Lock()
		if p.closed.Load() {
			p.mu.Unlock()
			l.sever()
			continue
		}
		p.links[l] = struct{}{}
		p.mu.Unlock()
		p.accepted.Add(1)
		p.wg.Add(2)
		go p.pump(l, c, s, true)
		go p.pump(l, s, c, false)
	}
}

// pump relays one direction of a link, applying the scripted faults.
func (p *Proxy) pump(l *link, src, dst net.Conn, up bool) {
	defer p.wg.Done()
	defer func() {
		l.sever()
		p.mu.Lock()
		delete(p.links, l)
		p.mu.Unlock()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			lat := p.latency
			unstall := p.unstall
			p.mu.Unlock()
			<-unstall
			if lat > 0 {
				time.Sleep(lat)
			}
			out := buf[:n]
			cut := false
			if up {
				out, cut = p.chargeUp(out)
				p.bytesUp.Add(int64(len(out)))
			} else {
				p.bytesDown.Add(int64(n))
			}
			if len(out) > 0 {
				if _, werr := dst.Write(out); werr != nil {
					return
				}
			}
			if cut {
				p.cuts.Add(1)
				p.severAll()
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// chargeUp applies the upstream cut budget to a chunk, returning the
// prefix still allowed through and whether the budget just ran out.
func (p *Proxy) chargeUp(b []byte) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cutBudget < 0 {
		return b, false
	}
	if int64(len(b)) < p.cutBudget {
		p.cutBudget -= int64(len(b))
		return b, false
	}
	b = b[:p.cutBudget]
	p.cutBudget = -1 // disarm: one-shot
	return b, true
}

// severAll cuts every link (used when a CutAfter budget triggers).
func (p *Proxy) severAll() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.sever()
	}
}
