// Package sensor implements BRISK's internal sensors: the application-side
// NOTICE primitives that write instrumentation-data records into a node's
// shared-memory ring buffer.
//
// The paper's internal sensors are cpp macros extending JEWEL's, writing a
// record of dynamically-typed fields into a ring buffer in shared memory;
// the raw local time from gettimeofday is embedded as the X_TS field. Two
// API levels reproduce that design:
//
//   - Notice is the dynamically-typed general form (up to eight fields of
//     any type), convenient for new users.
//   - Notice6i, Notice2i, ... are specialized forms equivalent to the
//     custom macros emitted by the paper's utility tool ("an on-demand
//     partial evaluation/specialization of sensors that results in smaller
//     and faster code"). cmd/mknotice generates further variants.
//
// A Sensor corresponds to one instrumented application process: it owns an
// SPSC ring and must be used from a single goroutine (matching the paper's
// one-ring-per-process layout). When the ring is full the notice is
// dropped and counted — the application never blocks on the
// instrumentation system.
package sensor

import (
	"brisk/internal/record"
	"brisk/internal/shm"
	"brisk/internal/vclock"
	"brisk/internal/xdr"
)

// DefaultRingBytes is the ring capacity used when Options does not set one.
const DefaultRingBytes = 1 << 16

// Options configures a Sensor.
type Options struct {
	// RingBytes is the sensor ring capacity; 0 means DefaultRingBytes.
	RingBytes int
	// Clock supplies raw local time for embedded timestamps; nil means
	// the system clock. Simulated nodes inject drifting clocks here.
	Clock vclock.Clock
	// OmitTS disables automatic timestamp embedding. The paper's NOTICE
	// always stamps; leave this false except in unit tests that need
	// timestamp-free records.
	OmitTS bool
	// SampleEvery, when > 1, records only every n-th notice (counted per
	// sensor, deterministic): the volume-control knob for events that
	// "may together form large volumes of instrumentation data and
	// monopolize IS resources". Skipped notices still count in Notices().
	SampleEvery int
}

// Sensor is one application's internal sensor. Not safe for concurrent
// use: create one Sensor per instrumented goroutine, each with its own
// ring, exactly as the paper gives each user process its own ring buffer.
type Sensor struct {
	ring   *shm.Ring
	clock  vclock.Clock
	omitTS bool
	sample int
	buf    []byte
	rec    record.Record // scratch for the dynamic path

	notices uint64
	skipped uint64
}

// take counts one notice and reports whether sampling admits it.
func (s *Sensor) take() bool {
	s.notices++
	if s.sample > 1 && s.notices%uint64(s.sample) != 0 {
		s.skipped++
		return false
	}
	return true
}

// Skipped returns how many notices sampling suppressed.
func (s *Sensor) Skipped() uint64 { return s.skipped }

// New attaches a sensor to region under the given name.
func New(region *shm.Region, name string, opts Options) *Sensor {
	rb := opts.RingBytes
	if rb == 0 {
		rb = DefaultRingBytes
	}
	clk := opts.Clock
	if clk == nil {
		clk = vclock.System{}
	}
	return &Sensor{
		ring:   region.Attach(name, rb),
		clock:  clk,
		omitTS: opts.OmitTS,
		sample: opts.SampleEvery,
		buf:    make([]byte, 0, 256),
	}
}

// Ring returns the sensor's ring, mainly for tests and diagnostics.
func (s *Sensor) Ring() *shm.Ring { return s.ring }

// Notices returns how many notices the application issued (including ones
// dropped at the ring).
func (s *Sensor) Notices() uint64 { return s.notices }

// Dropped returns how many notices were dropped because the ring was full.
func (s *Sensor) Dropped() uint64 { return s.ring.Dropped() }

// Notice records a dynamically-typed event. A TS field holding the current
// raw local time is embedded automatically (unless OmitTS), so callers may
// pass at most record.MaxFields-1 values. It reports whether the record
// was accepted into the ring.
func (s *Sensor) Notice(event uint8, vals ...record.Value) bool {
	if !s.take() {
		return true
	}
	s.rec.Event = event
	s.rec.Fields = s.rec.Fields[:0]
	if !s.omitTS {
		s.rec.Fields = append(s.rec.Fields, record.TSVal(s.clock.NowMicros()))
	}
	s.rec.Fields = append(s.rec.Fields, vals...)
	var err error
	s.buf, err = s.rec.Append(s.buf[:0])
	if err != nil {
		return false
	}
	return s.ring.Write(s.buf)
}

// header appends the fixed 8-byte record meta header for a record of the
// given total size, event class and packed field-type nibbles.
func header(dst []byte, size int, event uint8, nfields int, nibbles uint32) []byte {
	return append(dst,
		byte(size>>8), byte(size),
		event, byte(nfields)<<4,
		byte(nibbles>>24), byte(nibbles>>16), byte(nibbles>>8), byte(nibbles))
}

// Field-type nibble constants for the specialized encoders. Nibble i
// (field i) sits at shift 28-4i of the packed word.
const (
	nibTS     = uint32(record.TS)
	nibI32    = uint32(record.Int32)
	nibF64    = uint32(record.Float64)
	nibStr    = uint32(record.String)
	nibReason = uint32(record.Reason)
	nibConseq = uint32(record.Conseq)
)

// Notice6i records the evaluation workload's shape — six int32 fields plus
// the embedded timestamp — in a single pass with no allocation. On the
// wire it occupies exactly 40 bytes.
func (s *Sensor) Notice6i(event uint8, a, b, c, d, e, f int32) bool {
	if !s.take() {
		return true
	}
	const size = record.HeaderSize + 8 + 6*4
	nib := nibTS<<28 | nibI32<<24 | nibI32<<20 | nibI32<<16 | nibI32<<12 | nibI32<<8 | nibI32<<4
	buf := header(s.buf[:0], size, event, 7, nib)
	buf = xdr.AppendInt64(buf, s.clock.NowMicros())
	buf = xdr.AppendInt32(buf, a)
	buf = xdr.AppendInt32(buf, b)
	buf = xdr.AppendInt32(buf, c)
	buf = xdr.AppendInt32(buf, d)
	buf = xdr.AppendInt32(buf, e)
	buf = xdr.AppendInt32(buf, f)
	s.buf = buf
	return s.ring.Write(buf)
}

// Notice2i records a timestamp plus two int32 fields.
func (s *Sensor) Notice2i(event uint8, a, b int32) bool {
	if !s.take() {
		return true
	}
	const size = record.HeaderSize + 8 + 2*4
	nib := nibTS<<28 | nibI32<<24 | nibI32<<20
	buf := header(s.buf[:0], size, event, 3, nib)
	buf = xdr.AppendInt64(buf, s.clock.NowMicros())
	buf = xdr.AppendInt32(buf, a)
	buf = xdr.AppendInt32(buf, b)
	s.buf = buf
	return s.ring.Write(buf)
}

// Notice1f records a timestamp plus one float64 field.
func (s *Sensor) Notice1f(event uint8, v float64) bool {
	if !s.take() {
		return true
	}
	const size = record.HeaderSize + 8 + 8
	nib := nibTS<<28 | nibF64<<24
	buf := header(s.buf[:0], size, event, 2, nib)
	buf = xdr.AppendInt64(buf, s.clock.NowMicros())
	buf = xdr.AppendFloat64(buf, v)
	s.buf = buf
	return s.ring.Write(buf)
}

// Notice1s records a timestamp plus one string field.
func (s *Sensor) Notice1s(event uint8, v string) bool {
	if !s.take() {
		return true
	}
	size := record.HeaderSize + 8 + xdr.OpaqueLen(len(v))
	if size > 0xFFFF {
		return false
	}
	nib := nibTS<<28 | nibStr<<24
	buf := header(s.buf[:0], size, event, 2, nib)
	buf = xdr.AppendInt64(buf, s.clock.NowMicros())
	buf = xdr.AppendString(buf, v)
	s.buf = buf
	return s.ring.Write(buf)
}

// NoticeReason records a causal "reason" event: timestamp, the causal
// identifier (an X_REASON field), and one int32 payload. The manager holds
// matching consequence events until this record has been emitted.
func (s *Sensor) NoticeReason(event uint8, id uint64, a int32) bool {
	if !s.take() {
		return true
	}
	const size = record.HeaderSize + 8 + 8 + 4
	nib := nibTS<<28 | nibReason<<24 | nibI32<<20
	buf := header(s.buf[:0], size, event, 3, nib)
	buf = xdr.AppendInt64(buf, s.clock.NowMicros())
	buf = xdr.AppendUint64(buf, id)
	buf = xdr.AppendInt32(buf, a)
	s.buf = buf
	return s.ring.Write(buf)
}

// NoticeConseq records a causal "consequence" event: timestamp, the causal
// identifier (an X_CONSEQ field), and one int32 payload. If its timestamp
// precedes the matching reason's (a tachyon), the manager overrides it.
func (s *Sensor) NoticeConseq(event uint8, id uint64, a int32) bool {
	if !s.take() {
		return true
	}
	const size = record.HeaderSize + 8 + 8 + 4
	nib := nibTS<<28 | nibConseq<<24 | nibI32<<20
	buf := header(s.buf[:0], size, event, 3, nib)
	buf = xdr.AppendInt64(buf, s.clock.NowMicros())
	buf = xdr.AppendUint64(buf, id)
	buf = xdr.AppendInt32(buf, a)
	s.buf = buf
	return s.ring.Write(buf)
}

// appendBool encodes a bool as an XDR word; used by generated notices.
func appendBool(dst []byte, v bool) []byte {
	var b uint32
	if v {
		b = 1
	}
	return xdr.AppendUint32(dst, b)
}
