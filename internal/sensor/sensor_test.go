package sensor

import (
	"testing"

	"brisk/internal/record"
	"brisk/internal/shm"
	"brisk/internal/vclock"
)

// drainOne drains exactly one record from the sensor's ring and decodes it.
func drainOne(t *testing.T, s *Sensor) record.Record {
	t.Helper()
	var out record.Record
	n := s.Ring().Drain(1, func(rec []byte) {
		var err error
		out, _, err = record.Decode(rec)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
	})
	if n != 1 {
		t.Fatalf("expected one record in ring, drained %d", n)
	}
	return out
}

func newTestSensor(t *testing.T, clock vclock.Clock) *Sensor {
	t.Helper()
	return New(shm.NewRegion(), "test", Options{Clock: clock})
}

func TestNoticeEmbedsTimestamp(t *testing.T) {
	clk := vclock.NewManual(12345)
	s := newTestSensor(t, clk)
	if !s.Notice(9, record.I32Val(7), record.StrVal("x")) {
		t.Fatal("Notice failed")
	}
	r := drainOne(t, s)
	if r.Event != 9 || !r.HasTS || r.TS != 12345 {
		t.Fatalf("record = %+v", r)
	}
	if len(r.Fields) != 3 || r.Fields[1].Int() != 7 || r.Fields[2].Str != "x" {
		t.Fatalf("fields = %#v", r.Fields)
	}
}

func TestNoticeOmitTS(t *testing.T) {
	s := New(shm.NewRegion(), "t", Options{Clock: vclock.NewManual(1), OmitTS: true})
	s.Notice(1, record.I32Val(5))
	r := drainOne(t, s)
	if r.HasTS || len(r.Fields) != 1 {
		t.Fatalf("OmitTS record = %+v", r)
	}
}

func TestNoticeTooManyFields(t *testing.T) {
	s := newTestSensor(t, vclock.NewManual(0))
	vals := make([]record.Value, record.MaxFields) // + auto TS = 9
	for i := range vals {
		vals[i] = record.I32Val(int32(i))
	}
	if s.Notice(1, vals...) {
		t.Fatal("Notice with 8 user fields + TS should fail")
	}
	if s.Notices() != 1 {
		t.Fatalf("notices = %d", s.Notices())
	}
}

func TestNotice6iMatchesDynamicEncoding(t *testing.T) {
	clk := vclock.NewManual(777)
	s1 := newTestSensor(t, clk)
	s2 := newTestSensor(t, clk)

	if !s1.Notice6i(3, 1, 2, 3, 4, 5, 6) {
		t.Fatal("Notice6i failed")
	}
	if !s2.Notice(3, record.I32Val(1), record.I32Val(2), record.I32Val(3),
		record.I32Val(4), record.I32Val(5), record.I32Val(6)) {
		t.Fatal("dynamic Notice failed")
	}

	var raw1, raw2 []byte
	s1.Ring().Drain(1, func(b []byte) { raw1 = append([]byte(nil), b...) })
	s2.Ring().Drain(1, func(b []byte) { raw2 = append([]byte(nil), b...) })
	if string(raw1) != string(raw2) {
		t.Fatalf("specialized and dynamic encodings differ:\n% x\n% x", raw1, raw2)
	}
	if len(raw1) != 40 {
		t.Fatalf("six-int notice = %d bytes, want 40 (paper)", len(raw1))
	}
}

func TestSpecializedNotices(t *testing.T) {
	clk := vclock.NewManual(50)
	s := newTestSensor(t, clk)

	s.Notice2i(1, -5, 10)
	r := drainOne(t, s)
	if r.TS != 50 || r.Fields[1].Int() != -5 || r.Fields[2].Int() != 10 {
		t.Fatalf("Notice2i = %+v", r)
	}

	s.Notice1f(2, 2.75)
	r = drainOne(t, s)
	if r.Fields[1].Float() != 2.75 {
		t.Fatalf("Notice1f = %+v", r)
	}

	s.Notice1s(3, "hello")
	r = drainOne(t, s)
	if r.Fields[1].Str != "hello" {
		t.Fatalf("Notice1s = %+v", r)
	}

	s.NoticeReason(4, 42, 7)
	r = drainOne(t, s)
	if r.Reason != 42 || r.Conseq != 0 || r.Fields[2].Int() != 7 {
		t.Fatalf("NoticeReason = %+v", r)
	}

	s.NoticeConseq(5, 42, 8)
	r = drainOne(t, s)
	if r.Conseq != 42 || r.Reason != 0 || r.Fields[2].Int() != 8 {
		t.Fatalf("NoticeConseq = %+v", r)
	}
}

func TestNotice1sOversized(t *testing.T) {
	s := newTestSensor(t, vclock.NewManual(0))
	big := make([]byte, 70000)
	if s.Notice1s(1, string(big)) {
		t.Fatal("oversized string notice accepted")
	}
}

func TestDropAccounting(t *testing.T) {
	s := New(shm.NewRegion(), "t", Options{Clock: vclock.NewManual(0), RingBytes: 64})
	wrote := 0
	for i := 0; i < 20; i++ {
		if s.Notice6i(1, 0, 0, 0, 0, 0, 0) {
			wrote++
		}
	}
	if s.Dropped() == 0 {
		t.Fatal("expected drops on a 64-byte ring")
	}
	if uint64(wrote)+s.Dropped() != 20 {
		t.Fatalf("wrote %d + dropped %d != 20", wrote, s.Dropped())
	}
	if s.Notices() != 20 {
		t.Fatalf("notices = %d", s.Notices())
	}
}

func TestClockProgressReflectedInTS(t *testing.T) {
	clk := vclock.NewManual(100)
	s := newTestSensor(t, clk)
	s.Notice6i(1, 0, 0, 0, 0, 0, 0)
	clk.Advance(500)
	s.Notice6i(1, 0, 0, 0, 0, 0, 0)
	r1 := drainOne(t, s)
	r2 := drainOne(t, s)
	if r1.TS != 100 || r2.TS != 600 {
		t.Fatalf("timestamps = %d, %d; want 100, 600", r1.TS, r2.TS)
	}
}

func TestDefaultOptions(t *testing.T) {
	s := New(shm.NewRegion(), "sys", Options{})
	if s.Ring().Cap() != DefaultRingBytes {
		t.Fatalf("default ring = %d", s.Ring().Cap())
	}
	s.Notice6i(1, 0, 0, 0, 0, 0, 0)
	r := drainOne(t, s)
	if !r.HasTS || r.TS == 0 {
		t.Fatal("system clock produced no timestamp")
	}
}

// BenchmarkNotice6i measures E1 (notice cost) on the specialized path —
// the paper reports 3.6–18.6 µs per average notice across platforms.
func BenchmarkNotice6i(b *testing.B) {
	s := New(shm.NewRegion(), "bench", Options{RingBytes: 1 << 20})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Notice6i(1, 1, 2, 3, 4, 5, 6) {
			s.Ring().Drain(0, func([]byte) {})
		}
	}
}

// BenchmarkNoticeDynamic measures E1 on the dynamic path (the ablation
// against specialization).
func BenchmarkNoticeDynamic(b *testing.B) {
	s := New(shm.NewRegion(), "bench", Options{RingBytes: 1 << 20})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok := s.Notice(1, record.I32Val(1), record.I32Val(2), record.I32Val(3),
			record.I32Val(4), record.I32Val(5), record.I32Val(6))
		if !ok {
			s.Ring().Drain(0, func([]byte) {})
		}
	}
}

func BenchmarkNotice1s(b *testing.B) {
	s := New(shm.NewRegion(), "bench", Options{RingBytes: 1 << 20})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Notice1s(1, "a short message") {
			s.Ring().Drain(0, func([]byte) {})
		}
	}
}

func TestGeneratedNoticeTxn(t *testing.T) {
	clk := vclock.NewManual(900)
	s := newTestSensor(t, clk)
	if !s.NoticeTxn(6, -1234567890123, 42, "commit") {
		t.Fatal("NoticeTxn failed")
	}
	r := drainOne(t, s)
	if r.TS != 900 || r.Fields[1].Int() != -1234567890123 ||
		r.Fields[2].Int() != 42 || r.Fields[3].Str != "commit" {
		t.Fatalf("generated notice record = %+v", r)
	}
}

func TestGeneratedNoticeCausal2(t *testing.T) {
	s := newTestSensor(t, vclock.NewManual(10))
	if !s.NoticeCausal2(7, 5, 9, -1) {
		t.Fatal("NoticeCausal2 failed")
	}
	r := drainOne(t, s)
	if r.Reason != 5 || r.Conseq != 9 || r.Fields[3].Int() != -1 {
		t.Fatalf("causal generated notice = %+v", r)
	}
}

func TestGeneratedNoticeTxnOversized(t *testing.T) {
	s := newTestSensor(t, vclock.NewManual(0))
	if s.NoticeTxn(1, 0, 0, string(make([]byte, 70000))) {
		t.Fatal("oversized generated notice accepted")
	}
}

func TestSampling(t *testing.T) {
	s := New(shm.NewRegion(), "t", Options{Clock: vclock.NewManual(0), SampleEvery: 3})
	for i := 0; i < 9; i++ {
		if !s.Notice6i(1, int32(i), 0, 0, 0, 0, 0) {
			t.Fatal("sampled notice reported failure")
		}
	}
	if s.Notices() != 9 || s.Skipped() != 6 {
		t.Fatalf("notices=%d skipped=%d", s.Notices(), s.Skipped())
	}
	recorded := 0
	s.Ring().Drain(0, func([]byte) { recorded++ })
	if recorded != 3 {
		t.Fatalf("recorded %d, want every 3rd of 9", recorded)
	}
}

func TestSamplingAppliesToAllPaths(t *testing.T) {
	s := New(shm.NewRegion(), "t", Options{Clock: vclock.NewManual(0), SampleEvery: 2})
	s.Notice(1, record.I32Val(1))
	s.Notice2i(1, 1, 2)
	s.Notice1f(1, 1.5)
	s.Notice1s(1, "x")
	s.NoticeReason(1, 1, 0)
	s.NoticeConseq(1, 1, 0)
	s.NoticeTxn(1, 1, 2, "y")
	s.NoticeCausal2(1, 1, 2, 3)
	recorded := 0
	s.Ring().Drain(0, func([]byte) { recorded++ })
	if recorded != 4 {
		t.Fatalf("recorded %d of 8 at 1-in-2 sampling", recorded)
	}
}

func TestNoSamplingByDefault(t *testing.T) {
	s := New(shm.NewRegion(), "t", Options{Clock: vclock.NewManual(0)})
	for i := 0; i < 5; i++ {
		s.Notice6i(1, 0, 0, 0, 0, 0, 0)
	}
	if s.Skipped() != 0 {
		t.Fatalf("skipped = %d without sampling", s.Skipped())
	}
}
