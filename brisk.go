// Package brisk is the public API of the Baseline Reduced Instrumentation
// System Kernel (BRISK), a portable and flexible distributed
// instrumentation system after Bakić, Mutka and Rover (IPPS 1999).
//
// BRISK follows a three-component model of a distributed instrumentation
// system:
//
//   - The local instrumentation server (LIS) on every node of the target
//     system: application goroutines carry internal sensors (the Notice
//     calls on a Sensor) that write dynamically-typed event records into
//     lock-free shared-memory rings, and one external sensor per node
//     drains the rings, applies the node's clock correction, and ships
//     record batches to the manager. A Node bundles all of this.
//   - The instrumentation-system manager (ISM): it merges the per-node
//     streams with a heap-based on-line sorter keyed by synchronized
//     timestamps, repairs causally-impossible orderings (tachyons), runs
//     the modified-Cristian clock-synchronization master, and fans the
//     sorted stream out to a memory buffer for consumer tools, PICL
//     ASCII trace files, and remote visual objects. A Manager bundles
//     this.
//   - The transfer protocol (TP): XDR-encoded records with a compressed
//     meta-information header over TCP stream sockets. It is internal to
//     the kernel; applications never touch it.
//
// # Quick start
//
//	mgr, _ := brisk.StartManager(brisk.ManagerOptions{})
//	defer mgr.Close()
//
//	node, _ := brisk.ConnectNode(brisk.NodeOptions{ManagerAddr: mgr.Addr()})
//	defer node.Close()
//
//	s := node.NewSensor("my-app")
//	s.Notice6i(1, 10, 20, 30, 40, 50, 60)
//
//	c := mgr.Consume()
//	rec, ok := c.Next()
//
// The package deliberately exposes the kernel's tuning knobs (batch sizes,
// flush intervals, the sorter's time frame policy, the synchronization
// damping) because BRISK's design goal is flexibility in the performance
// sense: users trade among intrusion, throughput, latency and ordering
// for their environment.
package brisk

import (
	"brisk/internal/record"
	"brisk/internal/sensor"
	"brisk/internal/vclock"
)

// Record is one instrumentation-data record: an event class, up to eight
// dynamically-typed fields, and cached views of the system fields
// (timestamp, causal identifiers).
type Record = record.Record

// Value is one dynamically-typed record field.
type Value = record.Value

// FieldType identifies a field's wire type.
type FieldType = record.Type

// Sensor is an internal sensor: the application-side notice issuer. A
// Sensor must be used from a single goroutine.
type Sensor = sensor.Sensor

// Clock supplies time in microseconds of UTC.
type Clock = vclock.Clock

// Field constructors, re-exported from the record model so applications
// can build dynamic notices without importing internal packages.
var (
	// I8 .. U64 build integer fields of the indicated width.
	I8  = record.I8Val
	U8  = record.U8Val
	I16 = record.I16Val
	U16 = record.U16Val
	I32 = record.I32Val
	U32 = record.U32Val
	I64 = record.I64Val
	U64 = record.U64Val
	// F32 and F64 build float fields.
	F32 = record.F32Val
	F64 = record.F64Val
	// Str builds a string field.
	Str = record.StrVal
	// Bool builds a boolean field.
	Bool = record.BoolVal
	// Reason and Conseq build the causal system fields: a consequence is
	// never delivered before the reason carrying the same identifier.
	Reason = record.ReasonVal
	Conseq = record.ConseqVal
	// TSField builds an explicit timestamp field (µs of UTC). Sensors
	// embed timestamps automatically; this is for tools assembling
	// records by hand.
	TSField = record.TSVal
)

// NewRecord assembles a record from an event class and field values,
// for tools and tests that synthesize records outside a sensor.
func NewRecord(event uint8, fields ...Value) Record {
	return record.New(event, fields...)
}
