package brisk

import (
	"context"
	"time"

	"brisk/internal/exs"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/vclock"
)

// NodeOptions configures ConnectNode.
type NodeOptions struct {
	// ManagerAddr is the manager's TCP address (required).
	ManagerAddr string
	// Name identifies the node to the manager (optional).
	Name string
	// RawClock is the node's uncorrected local clock; nil means the
	// system clock. Simulated deployments inject skewed clocks here.
	RawClock Clock
	// BatchBytes triggers a batch send at this size (default 16384).
	BatchBytes int
	// FlushInterval bounds how long a partial batch waits (default 5 ms)
	// — the node-side latency knob.
	FlushInterval time.Duration
	// MaxFlushInterval bounds how far the sensor widens its effective
	// flush interval while the manager withholds credit under overload
	// (default 8 × FlushInterval).
	MaxFlushInterval time.Duration
	// PollInterval is the external sensor's ring-scan period while idle
	// (default 500 µs).
	PollInterval time.Duration
	// ReconnectBase is the first backoff delay after a lost manager
	// connection; it doubles per failed attempt (default 50 ms).
	ReconnectBase time.Duration
	// ReconnectMax caps the exponential backoff (default 5 s).
	ReconnectMax time.Duration
	// ReconnectJitter is the ± jitter fraction on each backoff delay
	// (default 0.2; negative disables).
	ReconnectJitter float64
	// MaxReconnectAttempts caps failed reconnect attempts per outage
	// before the node degrades to drain-and-discard. 0 means the default
	// cap; negative retries forever.
	MaxReconnectAttempts int
	// SpillBytes bounds the in-memory buffer of unacknowledged records
	// kept across outages (default 4 MiB; oldest batches are dropped and
	// counted beyond it).
	SpillBytes int
	// Logf receives diagnostics (default: standard log package).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, is the registry the node's external sensor
	// registers its series in; nil gives the node a private registry,
	// readable via Node.Metrics.
	Metrics *Metrics
	// TraceSampleEvery is the pipeline stage tracer's sampling period
	// (every Nth record's age is measured per stage). 0 means the
	// default (64); negative disables tracing.
	TraceSampleEvery int
}

// SensorOptions tunes one internal sensor.
type SensorOptions struct {
	// RingBytes is the sensor's ring capacity (default 65536).
	RingBytes int
	// SampleEvery, when > 1, records only every n-th notice — the
	// volume-control knob for very high-rate instrumentation points.
	SampleEvery int
}

// NodeStats snapshots the node's external-sensor counters.
type NodeStats = exs.Stats

// Node is one node of the target system: its shared-memory region, its
// corrected clock, and its external sensor connected to the manager.
type Node struct {
	region *shm.Region
	clock  *vclock.Corrected
	raw    Clock
	ext    *exs.EXS
}

// ConnectNode creates a node's local instrumentation server and connects
// its external sensor to the manager.
func ConnectNode(opts NodeOptions) (*Node, error) {
	return ConnectNodeContext(context.Background(), opts)
}

// ConnectNodeContext is ConnectNode with a lifetime context: canceling
// ctx aborts any in-flight dial or reconnect backoff permanently (the
// node keeps running in drain-and-discard mode until Close).
func ConnectNodeContext(ctx context.Context, opts NodeOptions) (*Node, error) {
	raw := opts.RawClock
	if raw == nil {
		raw = vclock.System{}
	}
	region := shm.NewRegion()
	clock := vclock.NewCorrected(raw)
	e, err := exs.DialContext(ctx, exs.Config{
		ManagerAddr:          opts.ManagerAddr,
		NodeName:             opts.Name,
		Region:               region,
		Clock:                clock,
		BatchBytes:           opts.BatchBytes,
		FlushInterval:        opts.FlushInterval,
		MaxFlushInterval:     opts.MaxFlushInterval,
		PollInterval:         opts.PollInterval,
		ReconnectBase:        opts.ReconnectBase,
		ReconnectMax:         opts.ReconnectMax,
		ReconnectJitter:      opts.ReconnectJitter,
		MaxReconnectAttempts: opts.MaxReconnectAttempts,
		SpillBytes:           opts.SpillBytes,
		Logf:                 opts.Logf,
		Metrics:              opts.Metrics,
		TraceSampleEvery:     opts.TraceSampleEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Node{region: region, clock: clock, raw: raw, ext: e}, nil
}

// ID returns the manager-assigned node id stamped on this node's records.
func (n *Node) ID() int32 { return n.ext.Node() }

// NewSensor attaches an internal sensor for one application goroutine.
// Sensors write raw local timestamps; the external sensor adds the
// node's clock correction when shipping.
func (n *Node) NewSensor(name string, opts ...SensorOptions) *Sensor {
	var o SensorOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return sensor.New(n.region, name, sensor.Options{
		RingBytes:   o.RingBytes,
		SampleEvery: o.SampleEvery,
		Clock:       n.raw,
	})
}

// Correction returns the node's current clock-correction value in µs, as
// maintained by the synchronization slave.
func (n *Node) Correction() int64 { return n.clock.Correction() }

// Flush ships any buffered records to the manager immediately.
func (n *Node) Flush() { n.ext.Flush() }

// Stats snapshots the node's counters.
func (n *Node) Stats() NodeStats { return n.ext.Stats() }

// Metrics returns the registry holding the node's series — the one passed
// in NodeOptions.Metrics, or the node's private registry. Serve it with
// ServeObservability.
func (n *Node) Metrics() *Metrics { return n.ext.Metrics() }

// Close ships buffered records and disconnects from the manager.
func (n *Node) Close() error { return n.ext.Close() }

// Consumer iterates the manager's sorted output stream.
type Consumer struct {
	cur *shm.Cursor
	// Lost accumulates records skipped because this consumer fell behind
	// the memory buffer (the manager's event dropping for slow readers).
	Lost uint64
}

// Next blocks for the next record; ok is false once the manager has
// closed and the stream is drained.
func (c *Consumer) Next() (Record, bool) {
	for {
		raw, lost, ok := c.cur.Next()
		c.Lost += lost
		if !ok {
			return Record{}, false
		}
		rec, err := decodeBuffered(raw)
		if err != nil {
			continue // skip corrupt entry rather than wedge the consumer
		}
		return rec, true
	}
}

// TryNext is the non-blocking variant; ok is false when no record is
// currently available.
func (c *Consumer) TryNext() (Record, bool) {
	for {
		raw, lost, ok := c.cur.TryNext()
		c.Lost += lost
		if !ok {
			return Record{}, false
		}
		rec, err := decodeBuffered(raw)
		if err != nil {
			continue
		}
		return rec, true
	}
}
