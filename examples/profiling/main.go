// Profiling: BRISK's event-based monitoring emulating a profiler. Two
// nodes bracket their work phases with begin/end notices; a consumer
// pairs them from the sorted stream and reports per-node, per-region
// duration statistics — the hybrid tracing/profiling emulation the
// paper's flexibility discussion describes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"brisk"
	"brisk/internal/profile"
)

// Event classes: begin/end pairs for two profiled regions.
const (
	evComputeBegin = 10
	evComputeEnd   = 11
	evIOBegin      = 20
	evIOEnd        = 21
)

func main() {
	mgr, err := brisk.StartManager(brisk.ManagerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	var wg sync.WaitGroup
	for n := 0; n < 2; n++ {
		node, err := brisk.ConnectNode(brisk.NodeOptions{
			ManagerAddr: mgr.Addr(),
			Name:        fmt.Sprintf("worker-%d", n),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		wg.Add(1)
		go func(node *brisk.Node, seed int64) {
			defer wg.Done()
			s := node.NewSensor("app")
			rng := rand.New(rand.NewSource(seed))
			for task := int32(0); task < 20; task++ {
				s.Notice2i(evComputeBegin, task, 0)
				time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
				s.Notice2i(evComputeEnd, task, 0)

				s.Notice2i(evIOBegin, task, 0)
				time.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond)
				s.Notice2i(evIOEnd, task, 0)
			}
			node.Flush()
		}(node, int64(n+1))
	}
	wg.Wait()

	// The profiler is just another consumer of the sorted stream.
	p := profile.New([]profile.PairRule{
		{Begin: evComputeBegin, End: evComputeEnd, Name: "compute"},
		{Begin: evIOBegin, End: evIOEnd, Name: "io"},
	})
	c := mgr.Consume()
	deadline := time.Now().Add(10 * time.Second)
	fed := 0
	for fed < 2*2*2*20 && time.Now().Before(deadline) { // 2 nodes × 2 regions × begin+end × 20 tasks
		rec, ok := c.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		p.Feed(&rec)
		fed++
	}
	fmt.Printf("profile built from %d events:\n\n%s", fed, p.String())
	if p.OpenRegions() != 0 {
		fmt.Printf("still open: %d\n", p.OpenRegions())
	}
}
