// Clocksync: a deterministic replay of the paper's clock-synchronization
// experiment on the simulated testbed — eight node clocks starting
// seconds apart on a jittery LAN, polled every five seconds, converging
// to mutual agreement within tens of microseconds. The same run is then
// repeated with the original Cristian update (amortized slew) to show the
// convergence-speed difference the paper claims.
package main

import (
	"fmt"

	"brisk/internal/clocksync"
	"brisk/internal/simnet"
)

const fiveSeconds = 5_000_000

func run(name string, cfg clocksync.Config, seed uint64) {
	cluster := clocksync.NewSimCluster(8, simnet.QuietLAN(seed), 50_000, 2, seed)
	fmt.Printf("%s\n  initial mutual skew: %d µs\n", name, cluster.MaxMutualSkew())
	res := cluster.Run(cfg, 24, fiveSeconds, 150)
	fmt.Print("  skew after round: ")
	for i, s := range res.SkewAfterRound {
		if i%4 == 0 || s > 150 {
			fmt.Printf("[%d]=%dµs ", i+1, s)
		}
	}
	fmt.Printf("\n  converged (≤150 µs) after round %d; mean probe RTT %.0f µs\n\n",
		res.RoundsToConverge, res.MeanRTT)
}

func main() {
	fmt.Println("simulated cluster: 8 nodes, clocks start up to ±50 ms apart,")
	fmt.Println("±2 ppm drift, exponential LAN jitter, 5 s polling rounds")
	fmt.Println()
	run("BRISK modified algorithm (align to most-ahead clock, forward-only steps):",
		clocksync.Config{}, 7)
	run("original Cristian (align to master, slew-limited to 2.5 ms/round):",
		clocksync.Config{Algorithm: clocksync.AlgCristian, MaxSlew: 2500}, 7)

	// The disturbed-LAN condition: bursty extra latency interferes with
	// the probes, as in the paper's second measurement.
	cluster := clocksync.NewSimCluster(8, simnet.LAN(9), 5_000_000, 2, 9)
	res := cluster.Run(clocksync.Config{MaxRTT: 1500}, 120, fiveSeconds, 200)
	over := 0
	for _, s := range res.SkewAfterRound[20:] {
		if s > 200 {
			over++
		}
	}
	fmt.Printf("disturbed LAN, 120 rounds: skew stayed under 200 µs in %d%% of post-convergence rounds\n",
		100-100*over/(len(res.SkewAfterRound)-20))
}
