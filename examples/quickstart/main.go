// Quickstart: the smallest complete BRISK deployment — one manager, one
// node, one instrumented goroutine, and a consumer that prints the sorted
// stream.
package main

import (
	"fmt"
	"log"
	"time"

	"brisk"
)

func main() {
	// The manager (ISM) listens on an ephemeral localhost port.
	mgr, err := brisk.StartManager(brisk.ManagerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	// One node of the "target system": its local instrumentation server
	// connects to the manager.
	node, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr: mgr.Addr(),
		Name:        "quickstart-node",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	// The instrumented application: a sensor per goroutine. Notice6i is
	// the specialized six-int notice (40 bytes on the wire); Notice takes
	// arbitrary dynamically-typed fields.
	s := node.NewSensor("demo-app")
	for i := 0; i < 10; i++ {
		s.Notice6i(1, int32(i), int32(i*i), 0, 0, 0, 0)
		s.Notice(2, brisk.Str("checkpoint"), brisk.I32(int32(i)), brisk.F64(float64(i)/3))
		time.Sleep(2 * time.Millisecond)
	}
	node.Flush()

	// A consumer tool reading the manager's memory buffer: records arrive
	// merged and sorted by synchronized timestamp.
	c := mgr.Consume()
	for got := 0; got < 20; {
		rec, ok := c.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		fmt.Println(rec.String())
		got++
	}
	st := mgr.Stats()
	fmt.Printf("\nmanager: received=%d emitted=%d batches=%d\n",
		st.Received, st.Emitted, st.Batches)
}
