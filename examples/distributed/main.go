// Distributed: four nodes with deliberately skewed, drifting clocks feed
// one manager. The clock-synchronization master pulls the node clocks
// together while the on-line sorter merges their streams into timestamp
// order; a PICL ASCII trace is written as a byproduct.
//
// This example reproduces, at demo scale, the paper's distributed
// configuration: multiple external sensors on different nodes, built-in
// clock synchronization, and dynamic on-line sorting.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"brisk"
	"brisk/internal/vclock"
)

func main() {
	trace, err := os.CreateTemp("", "brisk-*.picl")
	if err != nil {
		log.Fatal(err)
	}
	defer trace.Close()

	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		Sorter: brisk.SorterOptions{InitialT: 5000}, // 5 ms merge window
		Sync:   brisk.SyncOptions{Period: 200 * time.Millisecond},
		PICL:   &brisk.PICLOptions{W: trace, Relative: true, Start: time.Now().UnixMicro()},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four nodes whose clocks start up to 40 ms apart and drift.
	skews := []int64{0, -40_000, 25_000, -10_000}
	drifts := []float64{0, 30, -20, 10}
	var nodes []*brisk.Node
	for i := range skews {
		node, err := brisk.ConnectNode(brisk.NodeOptions{
			ManagerAddr: mgr.Addr(),
			Name:        fmt.Sprintf("node-%d", i),
			RawClock:    vclock.NewDrift(vclock.System{}, skews[i], drifts[i]),
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, node)
	}

	// Let a few synchronization rounds run before the workload starts.
	time.Sleep(time.Second)
	fmt.Println("clock corrections after synchronization:")
	for i, node := range nodes {
		fmt.Printf("  node %d: started %+d µs off, correction now %+d µs\n",
			node.ID(), skews[i], node.Correction())
	}

	// Every node runs an instrumented worker.
	var wg sync.WaitGroup
	const perNode = 50
	for _, node := range nodes {
		wg.Add(1)
		go func(node *brisk.Node) {
			defer wg.Done()
			s := node.NewSensor("worker")
			for i := 0; i < perNode; i++ {
				s.Notice2i(1, int32(node.ID()), int32(i))
				time.Sleep(time.Millisecond)
			}
			node.Flush()
		}(node)
	}
	wg.Wait()

	// Consume the merged stream and check it is time-ordered despite the
	// skewed origins.
	c := mgr.Consume()
	var lastTS int64
	inversions, total := 0, 0
	deadline := time.Now().Add(10 * time.Second)
	for total < len(nodes)*perNode && time.Now().Before(deadline) {
		rec, ok := c.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if total > 0 && rec.TS < lastTS {
			inversions++
		}
		lastTS = rec.TS
		total++
	}
	st := mgr.Stats()
	fmt.Printf("\nmerged %d records from %d nodes: %d inversions in consumer stream\n",
		total, len(nodes), inversions)
	fmt.Printf("sorter: time frame grew to %d µs; sync rounds: %d\n",
		st.Sorter.GrownTo, st.SyncRounds)

	for _, node := range nodes {
		node.Close()
	}
	mgr.Close()
	fi, _ := os.Stat(trace.Name())
	fmt.Printf("PICL trace written to %s (%d bytes)\n", trace.Name(), fi.Size())
}
