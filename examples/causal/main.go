// Causal: request/response tracing across two nodes whose clocks disagree
// so badly that the response appears to happen before the request — a
// tachyon. BRISK's causally-related-event machinery (the X_REASON and
// X_CONSEQ system fields) holds each consequence until its reason has
// been delivered, overrides the impossible timestamp, and immediately
// requests an extra clock-synchronization round.
package main

import (
	"fmt"
	"log"
	"time"

	"brisk"
	"brisk/internal/vclock"
)

func main() {
	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		Sync: brisk.SyncOptions{Period: time.Hour}, // only tachyon-triggered rounds
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	// The "client" node keeps honest time; the "server" node is 300 ms
	// behind, so its responses are stamped before the requests.
	client, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr: mgr.Addr(), Name: "client",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	server, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr: mgr.Addr(), Name: "server",
		RawClock: vclock.NewDrift(vclock.System{}, -300_000, 0),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	cs := client.NewSensor("client-app")
	ss := server.NewSensor("server-app")

	// Three RPCs: the client marks each request as a reason, the server
	// marks the matching response as a consequence.
	const rpcs = 3
	for id := uint64(1); id <= rpcs; id++ {
		cs.NoticeReason(1, id, int32(id)) // request sent
		time.Sleep(10 * time.Millisecond) // network + service time
		ss.NoticeConseq(2, id, int32(id)) // response produced
		time.Sleep(20 * time.Millisecond)
	}
	client.Flush()
	server.Flush()

	c := mgr.Consume()
	fmt.Println("delivered stream (requests must precede their responses):")
	var reasonTS = map[uint64]int64{}
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < 2*rpcs && time.Now().Before(deadline) {
		rec, ok := c.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		got++
		switch {
		case rec.Reason != 0:
			reasonTS[rec.Reason] = rec.TS
			fmt.Printf("  request  id=%d ts=%d (node %d)\n", rec.Reason, rec.TS, rec.Node)
		case rec.Conseq != 0:
			rts := reasonTS[rec.Conseq]
			fmt.Printf("  response id=%d ts=%d (node %d)  Δ=%+d µs\n",
				rec.Conseq, rec.TS, rec.Node, rec.TS-rts)
			if rec.TS <= rts {
				fmt.Println("    !! causality violated — should never happen")
			}
		}
	}
	st := mgr.Stats()
	fmt.Printf("\ntachyons repaired: %d; extra sync rounds requested: %d\n",
		st.CRE.Tachyons, st.TachyonSyncs)
	fmt.Printf("server clock correction after repair-triggered sync: %+d µs\n",
		serverCorrection(server))
}

func serverCorrection(n *brisk.Node) int64 {
	// Corrections propagate asynchronously; wait briefly for the round.
	for i := 0; i < 100; i++ {
		if c := n.Correction(); c != 0 {
			return c
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n.Correction()
}
