// Observability: a two-node BRISK run with the live introspection
// endpoint. The manager registers its series in a shared registry, the
// endpoint serves it over HTTP, and this program plays the role of a
// monitoring system scraping /metrics mid-run.
//
// Run it:
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"brisk"
	"brisk/internal/vclock"
)

func main() {
	// One registry shared by the manager and the endpoint. Nodes keep
	// their private registries here (each EXS registers the same series
	// names, so distinct nodes want distinct registries); Node.Metrics
	// exposes them for per-node endpoints.
	reg := brisk.NewMetrics()
	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		Metrics: reg,
		Sync:    brisk.SyncOptions{Period: 200 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	obs, err := brisk.ServeObservability("127.0.0.1:0", reg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer obs.Close()
	fmt.Printf("metrics endpoint: http://%s/metrics\n", obs.Addr())

	// Two nodes: one honest clock, one 50 ms behind so the clock-sync
	// master has something to correct.
	node1, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr: mgr.Addr(), Name: "node-1",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node1.Close()
	node2, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr: mgr.Addr(), Name: "node-2",
		RawClock: vclock.NewDrift(vclock.System{}, -50_000, 0),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node2.Close()

	// Instrumented work on both nodes.
	s1 := node1.NewSensor("app")
	s2 := node2.NewSensor("app")
	for i := 0; i < 500; i++ {
		s1.Notice2i(1, int32(i), 0)
		s2.Notice2i(2, int32(i), 1)
	}
	node1.Flush()
	node2.Flush()

	// Drain the sorted stream while the run is live.
	c := mgr.Consume()
	for got := 0; got < 1000; {
		if _, ok := c.TryNext(); ok {
			got++
			continue
		}
		time.Sleep(time.Millisecond)
	}

	// Scrape the endpoint the way Prometheus would.
	resp, err := http.Get("http://" + obs.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "brisk_ism_records_received_total") ||
			strings.HasPrefix(line, "brisk_ism_connected_sensors") ||
			strings.HasPrefix(line, "brisk_ols_window_microseconds") ||
			strings.HasPrefix(line, "brisk_cre_tachyons_total") {
			fmt.Println(line)
		}
	}
}
