package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"brisk"
)

// Example starts a manager with a shared registry, runs one node through
// it, and scrapes the live introspection endpoint — the miniature of what
// main does, with deterministic output.
func Example() {
	reg := brisk.NewMetrics()
	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		Metrics: reg,
		Logf:    func(string, ...any) {}, // keep the example output exact
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer mgr.Close()
	obs, err := brisk.ServeObservability("127.0.0.1:0", reg, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer obs.Close()

	node, err := brisk.ConnectNode(brisk.NodeOptions{ManagerAddr: mgr.Addr(), Name: "n"})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer node.Close()
	s := node.NewSensor("app")
	for i := 0; i < 100; i++ {
		s.Notice2i(1, int32(i), 0)
	}
	node.Flush()
	c := mgr.Consume()
	for got := 0; got < 100; {
		if _, ok := c.TryNext(); ok {
			got++
			continue
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get("http://" + obs.Addr() + "/healthz")
	if err != nil {
		fmt.Println(err)
		return
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("healthz: %s", health)

	resp, err = http.Get("http://" + obs.Addr() + "/metrics")
	if err != nil {
		fmt.Println(err)
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(body)
	for _, name := range []string{
		"brisk_ism_records_received_total 100",
		"brisk_ols_window_microseconds",
		"brisk_cre_tachyons_total",
	} {
		fmt.Printf("%s present: %v\n", name, strings.Contains(exposition, name))
	}

	// Output:
	// healthz: ok
	// brisk_ism_records_received_total 100 present: true
	// brisk_ols_window_microseconds present: true
	// brisk_cre_tachyons_total present: true
}
