package brisk

import "brisk/internal/metrics"

// Metrics is a registry of named counters, gauges, and histograms covering
// every stage of the instrumentation pipeline. Both the manager and nodes
// register their series into one: pass the same registry in
// ManagerOptions.Metrics (or NodeOptions.Metrics) to aggregate several
// components into a single exposition, or leave it nil and read the
// component's private registry via Manager.Metrics / Node.Metrics.
//
// See OBSERVABILITY.md for the catalogue of exported series.
type Metrics = metrics.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// ObservabilityServer is a running HTTP introspection endpoint serving
// /metrics (Prometheus text, JSON via ?format=json), /healthz, and
// /debug/pprof. Create with ServeObservability, stop with Close.
type ObservabilityServer = metrics.Server

// ServeObservability binds addr (host:port; port 0 for ephemeral) and
// serves the introspection endpoint for reg. healthy, when non-nil, backs
// /healthz: a non-nil error turns the endpoint 503 with the error text.
func ServeObservability(addr string, reg *Metrics, healthy func() error) (*ObservabilityServer, error) {
	return metrics.Serve(addr, reg, healthy)
}
