// Benchmarks regenerating the paper's evaluation (one per experiment;
// see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured record). cmd/briskbench runs the same harnesses with
// full parameters and table output.
package brisk_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"brisk"
	"brisk/internal/bench"
	"brisk/internal/clocksync"
	"brisk/internal/ols"
	"brisk/internal/record"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/simnet"
	"brisk/internal/workload"
)

// BenchmarkE1Notice6i is experiment E1 on the specialized path: the cost
// of one NOTICE with six int fields (paper: 3.6–18.6 µs per notice).
func BenchmarkE1Notice6i(b *testing.B) {
	s := sensor.New(shm.NewRegion(), "e1", sensor.Options{RingBytes: 1 << 22})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Notice6i(1, int32(i), 2, 3, 4, 5, 6) {
			s.Ring().Drain(0, func([]byte) {})
		}
	}
}

// BenchmarkE1NoticeDynamic is E1's ablation: the dynamically-typed notice
// for the same record (the specialization the paper's mknotice-equivalent
// tool exists to avoid).
func BenchmarkE1NoticeDynamic(b *testing.B) {
	s := sensor.New(shm.NewRegion(), "e1", sensor.Options{RingBytes: 1 << 22})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok := s.Notice(1, record.I32Val(int32(i)), record.I32Val(2), record.I32Val(3),
			record.I32Val(4), record.I32Val(5), record.I32Val(6))
		if !ok {
			s.Ring().Drain(0, func([]byte) {})
		}
	}
}

// BenchmarkE2EXSDrain approximates E2's object of study: the external
// sensor's per-record cost of draining the shared-memory ring.
func BenchmarkE2EXSDrain(b *testing.B) {
	s := sensor.New(shm.NewRegion(), "e2", sensor.Options{RingBytes: 1 << 22})
	batch := make([]byte, 0, 1<<20)
	b.ReportAllocs()
	filled := 0
	for i := 0; i < b.N; i++ {
		if filled == 0 {
			b.StopTimer()
			for filled < 10_000 && s.Notice6i(1, 0, 0, 0, 0, 0, 0) {
				filled++
			}
			b.StartTimer()
		}
		var n int
		batch, n = s.Ring().DrainAppend(batch[:0], 4096)
		filled -= n
	}
}

// BenchmarkE3PipelineThroughput is experiment E3: sustained EXS→ISM
// delivery of the 40-byte record (paper: max ≈ 90,000 events/s on the
// 1997-era testbed). events/s = 1e9 / (ns/op).
func BenchmarkE3PipelineThroughput(b *testing.B) {
	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		MergeInterval: time.Millisecond,
		BufferRecords: 1024,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	node, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr:   mgr.Addr(),
		FlushInterval: time.Millisecond,
		PollInterval:  100 * time.Microsecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	s := node.NewSensor("tp", brisk.SensorOptions{RingBytes: 1 << 22})
	b.SetBytes(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !s.Notice6i(1, int32(i), 2, 3, 4, 5, 6) {
			runtime.Gosched()
		}
	}
	node.Flush()
	for int(mgr.Stats().Received) < b.N {
		node.Flush()
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkE4EndToEndLatency is experiment E4: one notice driven through
// sensor → ring → EXS batch → wire → sorter → consumer per iteration;
// ns/op is the end-to-end latency under the smallest batching knobs.
func BenchmarkE4EndToEndLatency(b *testing.B) {
	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		MergeInterval: time.Millisecond,
		Sorter:        brisk.SorterOptions{InitialT: 100},
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	node, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr:   mgr.Addr(),
		FlushInterval: 500 * time.Microsecond,
		PollInterval:  100 * time.Microsecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	s := node.NewSensor("lat")
	c := mgr.Consume()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Notice2i(1, int32(i), 0)
		for {
			if _, ok := c.TryNext(); ok {
				break
			}
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// BenchmarkE5ScaleNodes is experiment E5: aggregate delivery with 1, 2, 4
// and 8 concurrently pushing nodes (paper: ISM-bound, roughly constant).
func BenchmarkE5ScaleNodes(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			mgr, err := brisk.StartManager(brisk.ManagerOptions{
				MergeInterval: time.Millisecond,
				BufferRecords: 1024,
				Logf:          func(string, ...any) {},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			type nd struct {
				node *brisk.Node
				s    *brisk.Sensor
			}
			var nodes []nd
			for i := 0; i < n; i++ {
				node, err := brisk.ConnectNode(brisk.NodeOptions{
					ManagerAddr:   mgr.Addr(),
					FlushInterval: time.Millisecond,
					PollInterval:  100 * time.Microsecond,
					Logf:          func(string, ...any) {},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer node.Close()
				nodes = append(nodes, nd{node, node.NewSensor("s", brisk.SensorOptions{RingBytes: 1 << 21})})
			}
			per := b.N / n
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			done := make(chan struct{})
			for _, x := range nodes {
				go func(x nd) {
					for i := 0; i < per; i++ {
						for !x.s.Notice6i(1, int32(i), 0, 0, 0, 0, 0) {
							runtime.Gosched()
						}
					}
					x.node.Flush()
					done <- struct{}{}
				}(x)
			}
			for range nodes {
				<-done
			}
			total := per * n
			for int(mgr.Stats().Received) < total {
				for _, x := range nodes {
					x.node.Flush()
				}
				time.Sleep(time.Millisecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkE6ClockSyncRound is experiment E6's unit of work: one complete
// synchronization round (probes, election, corrections) over the
// simulated eight-node LAN.
func BenchmarkE6ClockSyncRound(b *testing.B) {
	c := clocksync.NewSimCluster(8, simnet.QuietLAN(1), 5_000_000, 2, 9)
	m := clocksync.NewMaster(c.MasterClock, clocksync.Config{}, c.Conns())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Round(); err != nil {
			b.Fatal(err)
		}
		c.Sim.RunUntil(c.Sim.Now() + 5_000_000)
	}
}

// BenchmarkE6CristianRound is E6's baseline algorithm for comparison.
func BenchmarkE6CristianRound(b *testing.B) {
	c := clocksync.NewSimCluster(8, simnet.QuietLAN(1), 5_000_000, 2, 9)
	m := clocksync.NewMaster(c.MasterClock,
		clocksync.Config{Algorithm: clocksync.AlgCristian, MaxSlew: 2500}, c.Conns())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Round(); err != nil {
			b.Fatal(err)
		}
		c.Sim.RunUntil(c.Sim.Now() + 5_000_000)
	}
}

// BenchmarkE7OLS is experiment E7's unit of work: pushing and extracting
// one record through the adaptive on-line sorter with eight sources, for
// each growth policy (the ablation of the paper's strategy finding).
func BenchmarkE7OLS(b *testing.B) {
	policies := []struct {
		name string
		grow ols.GrowPolicy
	}{
		{"lateness", ols.GrowToLateness},
		{"double", ols.GrowDouble},
		{"fixed", ols.GrowFixed},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			events := workload.GenDelayedStreams([]workload.StreamSpec{
				{Source: 1, MeanGap: 100, Delay: workload.DelayParams{Base: 100, JitterMean: 50}},
				{Source: 2, MeanGap: 100, Delay: workload.DelayParams{Base: 2000, JitterMean: 500}},
			}, 10_000, 3)
			s := ols.New(ols.Config{InitialT: 100, Grow: p.grow})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := events[i%len(events)]
				// The stream repeats modulo its length; shift both the
				// timestamps and the arrivals by an epoch so time keeps
				// advancing across wraps.
				epoch := int64(i/len(events)) * (events[len(events)-1].Arrival + 1)
				rec := record.New(1, record.TSVal(epoch+ev.TS), record.I32Val(ev.Source))
				s.Push(ev.Source, rec, epoch+ev.Arrival)
				s.Extract(epoch+ev.Arrival, func(record.Record) {})
			}
		})
	}
}

// BenchmarkE7Sweep runs the complete E7 scenario sweep once per iteration
// — the full table's cost, for profiling the evaluation harness itself.
func BenchmarkE7Sweep(b *testing.B) {
	scenarios := bench.DefaultOLSScenarios(1)
	for i := range scenarios {
		scenarios[i].Events = 2000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sc := range scenarios {
			bench.RunOLS(sc)
		}
	}
}
