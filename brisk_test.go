package brisk_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"brisk"
	"brisk/internal/vclock"
)

func quiet(string, ...any) {}

func startPair(t *testing.T, mo brisk.ManagerOptions, no brisk.NodeOptions) (*brisk.Manager, *brisk.Node) {
	t.Helper()
	mo.Logf = quiet
	mgr, err := brisk.StartManager(mo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	no.ManagerAddr = mgr.Addr()
	no.Logf = quiet
	if no.FlushInterval == 0 {
		no.FlushInterval = time.Millisecond
	}
	node, err := brisk.ConnectNode(no)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return mgr, node
}

func TestQuickstartFlow(t *testing.T) {
	mgr, node := startPair(t, brisk.ManagerOptions{MergeInterval: time.Millisecond},
		brisk.NodeOptions{Name: "quick"})
	s := node.NewSensor("app")
	const n = 100
	for i := 0; i < n; i++ {
		if !s.Notice6i(1, int32(i), 0, 0, 0, 0, 0) {
			t.Fatal("notice dropped")
		}
	}
	c := mgr.Consume()
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < n && time.Now().Before(deadline) {
		rec, ok := c.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if rec.Node != node.ID() || rec.Event != 1 {
			t.Fatalf("record = %+v", rec)
		}
		got++
	}
	if got != n {
		t.Fatalf("consumed %d/%d (stats %+v)", got, n, mgr.Stats())
	}
	if c.Lost != 0 {
		t.Fatalf("lost %d", c.Lost)
	}
}

func TestDynamicNoticeFieldHelpers(t *testing.T) {
	mgr, node := startPair(t, brisk.ManagerOptions{MergeInterval: time.Millisecond},
		brisk.NodeOptions{})
	s := node.NewSensor("app")
	ok := s.Notice(9,
		brisk.I32(-7), brisk.U64(12), brisk.F64(2.5),
		brisk.Str("hello"), brisk.Bool(true))
	if !ok {
		t.Fatal("notice failed")
	}
	c := mgr.Consume()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := c.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if rec.Event != 9 || rec.Fields[1].Int() != -7 || rec.Fields[4].Str != "hello" {
			t.Fatalf("record = %+v", rec)
		}
		return
	}
	t.Fatal("record never arrived")
}

func TestCausalOrderingAcrossNodes(t *testing.T) {
	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		MergeInterval: time.Millisecond,
		Logf:          quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	// Node B's clock is 100 ms behind: its consequences look like they
	// precede their reasons until the manager repairs them.
	nodeA, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr: mgr.Addr(), Name: "a",
		FlushInterval: time.Millisecond, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	behind := vclock.NewDrift(vclock.System{}, -100_000, 0)
	nodeB, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr: mgr.Addr(), Name: "b", RawClock: behind,
		FlushInterval: time.Millisecond, Logf: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	sa := nodeA.NewSensor("appA")
	sb := nodeB.NewSensor("appB")
	sa.Notice(1, brisk.Reason(77))
	time.Sleep(20 * time.Millisecond)
	sb.Notice(2, brisk.Conseq(77))

	c := mgr.Consume()
	var got []brisk.Record
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < 2 && time.Now().Before(deadline) {
		rec, ok := c.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		got = append(got, rec)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].Reason != 77 || got[1].Conseq != 77 {
		t.Fatalf("causal order wrong: %+v", got)
	}
	if got[1].TS <= got[0].TS {
		t.Fatalf("tachyon survived: %d ≤ %d", got[1].TS, got[0].TS)
	}
	if mgr.Stats().CRE.Tachyons != 1 {
		t.Fatalf("stats = %+v", mgr.Stats())
	}
}

func TestPICLOutputThroughFacade(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	mgr, node := startPair(t, brisk.ManagerOptions{
		MergeInterval: time.Millisecond,
		PICL:          &brisk.PICLOptions{W: w},
	}, brisk.NodeOptions{})
	s := node.NewSensor("app")
	for i := 0; i < 5; i++ {
		s.Notice2i(4, int32(i), 0)
	}
	c := mgr.Consume()
	seen := 0
	deadline := time.Now().Add(10 * time.Second)
	for seen < 5 && time.Now().Before(deadline) {
		if _, ok := c.TryNext(); ok {
			seen++
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	node.Close()
	mgr.Close()
	mu.Lock()
	lines := strings.Count(buf.String(), "\n")
	mu.Unlock()
	if lines != 5 {
		t.Fatalf("picl lines = %d", lines)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestClockSyncThroughFacade(t *testing.T) {
	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		MergeInterval: time.Millisecond,
		Sync:          brisk.SyncOptions{Period: 30 * time.Millisecond},
		Logf:          quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	_, err = brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr: mgr.Addr(), Logf: quiet, FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	behind := vclock.NewDrift(vclock.System{}, -30_000, 0)
	nodeB, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr: mgr.Addr(), RawClock: behind, Logf: quiet,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if nodeB.Correction() > 20_000 {
			return // slow node advanced toward the reference
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("correction never applied: %d (rounds %d)",
		nodeB.Correction(), mgr.Stats().SyncRounds)
}

func TestNodeStatsAndFlush(t *testing.T) {
	_, node := startPair(t, brisk.ManagerOptions{}, brisk.NodeOptions{})
	s := node.NewSensor("app", brisk.SensorOptions{RingBytes: 4096})
	s.Notice6i(1, 0, 0, 0, 0, 0, 0)
	node.Flush()
	deadline := time.Now().Add(5 * time.Second)
	for node.Stats().Sent == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := node.Stats()
	if st.Sent != 1 || st.Node != node.ID() {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConsumerBlocksUntilClose(t *testing.T) {
	mgr, node := startPair(t, brisk.ManagerOptions{}, brisk.NodeOptions{})
	s := node.NewSensor("app")
	s.Notice6i(1, 0, 0, 0, 0, 0, 0)
	c := mgr.Consume()
	rec, ok := c.Next() // blocking read
	if !ok || rec.Event != 1 {
		t.Fatalf("rec=%+v ok=%v", rec, ok)
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := c.Next()
		done <- ok
	}()
	node.Close()
	mgr.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned a record after close with none pending")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("consumer not released by Close")
	}
}

func TestManagerEventFilter(t *testing.T) {
	mgr, node := startPair(t, brisk.ManagerOptions{
		MergeInterval: time.Millisecond,
		Filter:        brisk.FilterEvents(7),
	}, brisk.NodeOptions{})
	s := node.NewSensor("app")
	for i := 0; i < 10; i++ {
		s.Notice2i(7, int32(i), 0) // wanted
		s.Notice2i(9, int32(i), 0) // filtered out
	}
	c := mgr.Consume()
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < 10 && time.Now().Before(deadline) {
		rec, ok := c.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if rec.Event != 7 {
			t.Fatalf("filtered event leaked: %+v", rec)
		}
		got++
	}
	if got != 10 {
		t.Fatalf("got %d wanted records", got)
	}
	deadline = time.Now().Add(5 * time.Second)
	for mgr.Stats().Filtered < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if f := mgr.Stats().Filtered; f != 10 {
		t.Fatalf("filtered count = %d", f)
	}
}
