// Command briskbench regenerates the measurements of the paper's
// evaluation (Section 4). Each subcommand corresponds to one experiment;
// "all" runs the complete suite and prints one table per experiment.
//
// Usage:
//
//	briskbench all
//	briskbench notice [-iters 2000000]
//	briskbench exsutil [-dur 2s]
//	briskbench throughput [-events 500000]
//	briskbench latency [-events 200]
//	briskbench scale [-nodes 8] [-events 100000]
//	briskbench clocksync [-seed 1]
//	briskbench ols [-seed 1]
//	briskbench ingest [-sessions 1,8] [-records 150000] [-batch 256] [-json FILE]
//	briskbench sorter [-cores calendar,heap] [-shards 1,2,4,8] [-sources 8] [-records 100000]
//	briskbench subscribe [-subs 0,64,1024] [-records 150000] [-batch 256]
//	briskbench sync [-seed 1] [-assert-reduction 5]
//	briskbench benchgate -baseline BENCH_baseline.json [-out BENCH_current.json]
//	briskbench matrix [-scenarios scenarios] [-filter smoke] [-out BENCH_scenarios.json]
//
// Absolute numbers depend on the host; the paper's qualitative shape —
// who wins, roughly by what factor, where the knees are — is what the
// suite reproduces (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"brisk/internal/bench"
	"brisk/internal/ols"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "notice":
		err = runNotice(args)
	case "exsutil":
		err = runEXSUtil(args)
	case "throughput":
		err = runThroughput(args)
	case "latency":
		err = runLatency(args)
	case "scale":
		err = runScale(args)
	case "clocksync":
		err = runClockSync(args)
	case "ols":
		err = runOLS(args)
	case "ingest":
		err = runIngest(args)
	case "sorter":
		err = runSorter(args)
	case "subscribe":
		err = runSubscribe(args)
	case "sync":
		err = runSyncEfficiency(args)
	case "benchgate":
		err = runBenchGate(args)
	case "matrix":
		err = runMatrix(args)
	case "intrusion":
		err = runIntrusion(args)
	case "all":
		err = runAll(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "briskbench %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: briskbench <experiment> [flags]

experiments:
  notice      E1: per-notice CPU cost
  exsutil     E2: external-sensor CPU share at fixed rates
  throughput  E3: max EXS→ISM event throughput
  latency     E4: end-to-end latency vs batching knobs
  scale       E5: aggregate throughput vs node count
  clocksync   E6: clock-synchronization quality and convergence
  ols         E7: on-line sorting parameter sweep
  ingest      manager ingest capacity vs session count (bench-check suite)
  sorter      sorter-stage throughput vs core (calendar/heap) and shard count
  subscribe   ingest capacity with the subscription tap at each idle-subscriber count
  sync        probe efficiency: fixed-cadence vs model-based clock sync (CI sync-gate)
  benchgate   run the ingest suite and fail on regression vs a baseline file
  matrix      scenario matrix: workload × topology × clock × fault cells with contract checks
  intrusion   ablation: instrumentation overhead on a computation
  all         every experiment in sequence`)
}

func runNotice(args []string) error {
	fs := flag.NewFlagSet("notice", flag.ExitOnError)
	iters := fs.Int("iters", 2_000_000, "iterations per variant")
	fs.Parse(args)
	bench.RunNoticeCost(*iters).Table().Render(os.Stdout)
	return nil
}

func runEXSUtil(args []string) error {
	fs := flag.NewFlagSet("exsutil", flag.ExitOnError)
	dur := fs.Duration("dur", 2*time.Second, "measurement duration per rate")
	fs.Parse(args)
	rows, err := bench.RunEXSUtil(nil, *dur)
	if err != nil {
		return err
	}
	bench.UtilTable(rows).Render(os.Stdout)
	return nil
}

func runThroughput(args []string) error {
	fs := flag.NewFlagSet("throughput", flag.ExitOnError)
	events := fs.Int("events", 500_000, "events to push")
	sweep := fs.Bool("batches", false, "also sweep the batch-size knob")
	fs.Parse(args)
	res, err := bench.RunThroughput(*events)
	if err != nil {
		return err
	}
	res.Table().Render(os.Stdout)
	if *sweep {
		fmt.Println()
		rows, err := bench.RunBatchAblation(*events / 2)
		if err != nil {
			return err
		}
		bench.BatchTable(rows).Render(os.Stdout)
	}
	return nil
}

func runLatency(args []string) error {
	fs := flag.NewFlagSet("latency", flag.ExitOnError)
	events := fs.Int("events", 200, "events per knob setting")
	fs.Parse(args)
	rows, err := bench.RunLatency(*events)
	if err != nil {
		return err
	}
	bench.LatencyTable(rows).Render(os.Stdout)
	return nil
}

func runScale(args []string) error {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	nodes := fs.Int("nodes", 8, "maximum node count")
	events := fs.Int("events", 100_000, "events per node")
	fs.Parse(args)
	rows, err := bench.RunScale(*nodes, *events)
	if err != nil {
		return err
	}
	bench.ScaleTable(rows).Render(os.Stdout)
	return nil
}

func runClockSync(args []string) error {
	fs := flag.NewFlagSet("clocksync", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	series := fs.Bool("series", false, "also print the per-round skew series")
	ablation := fs.Bool("ablation", false, "also run the probe-filter ablation")
	fs.Parse(args)
	var results []bench.SyncResult
	for _, sc := range bench.DefaultSyncScenarios(*seed) {
		results = append(results, bench.RunSync(sc))
	}
	bench.SyncTable(results).Render(os.Stdout)
	if *ablation {
		fmt.Println()
		var ab []bench.SyncResult
		for _, sc := range bench.FilterAblationScenarios(*seed) {
			ab = append(ab, bench.RunSync(sc))
		}
		t := bench.SyncTable(ab)
		t.Title = "E6 ablation: probe-sample reduction under the disturbed LAN"
		t.Render(os.Stdout)
	}
	if *series {
		for _, r := range results {
			fmt.Printf("\n# %s: max mutual skew per round (µs)\n", r.Scenario.Name)
			for i, s := range r.Series {
				fmt.Printf("%d %d\n", i+1, s)
			}
		}
	}
	return nil
}

func runIntrusion(args []string) error {
	fs := flag.NewFlagSet("intrusion", flag.ExitOnError)
	iters := fs.Int("iters", 2_000_000, "work iterations per density")
	fs.Parse(args)
	rows, err := bench.RunIntrusion(*iters)
	if err != nil {
		return err
	}
	bench.IntrusionTable(rows).Render(os.Stdout)
	return nil
}

// parseSessionCounts turns "1,8" into []int{1, 8}.
func parseSessionCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad session count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no session counts in %q", s)
	}
	return out, nil
}

func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	sessions := fs.String("sessions", "1,8", "comma-separated session counts")
	records := fs.Int("records", 150_000, "records per session")
	batch := fs.Int("batch", 256, "records per data batch")
	jsonPath := fs.String("json", "", "also write results as a bench-check reference file")
	fs.Parse(args)
	counts, err := parseSessionCounts(*sessions)
	if err != nil {
		return err
	}
	rows, err := bench.RunIngestSuite(counts, *records, *batch)
	if err != nil {
		return err
	}
	bench.IngestTable(rows).Render(os.Stdout)
	if *jsonPath != "" {
		return bench.WriteBenchFile(*jsonPath, rows)
	}
	return nil
}

// parseCores turns "calendar,heap" into sorter core kinds.
func parseCores(s string) ([]ols.CoreKind, error) {
	var out []ols.CoreKind
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "":
		case "calendar":
			out = append(out, ols.CoreCalendar)
		case "heap":
			out = append(out, ols.CoreHeap)
		default:
			return nil, fmt.Errorf("bad sorter core %q (want calendar or heap)", f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sorter cores in %q", s)
	}
	return out, nil
}

func runSorter(args []string) error {
	fs := flag.NewFlagSet("sorter", flag.ExitOnError)
	cores := fs.String("cores", "calendar,heap", "comma-separated sorter cores (calendar, heap)")
	shards := fs.String("shards", "1,2,4,8", "comma-separated shard counts")
	sources := fs.Int("sources", 8, "parallel pushing sources")
	records := fs.Int("records", 100_000, "records per source")
	fs.Parse(args)
	kinds, err := parseCores(*cores)
	if err != nil {
		return err
	}
	counts, err := parseSessionCounts(*shards)
	if err != nil {
		return err
	}
	rows, err := bench.RunSorterSuite(kinds, counts, *sources, *records)
	if err != nil {
		return err
	}
	bench.SorterTable(rows).Render(os.Stdout)
	return nil
}

func runSubscribe(args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
	subs := fs.String("subs", "0,64,1024", "comma-separated idle subscriber counts")
	records := fs.Int("records", 150_000, "records pushed through the tapped manager")
	batch := fs.Int("batch", 256, "records per data batch")
	fs.Parse(args)
	var counts []int
	for _, f := range strings.Split(*subs, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return fmt.Errorf("bad subscriber count %q", f)
		}
		counts = append(counts, n)
	}
	rows, err := bench.RunSubscribeSuite(counts, *records, *batch)
	if err != nil {
		return err
	}
	bench.SubscribeTable(rows).Render(os.Stdout)
	return nil
}

// runSyncEfficiency compares fixed-cadence against model-based probe
// scheduling on identical simulated clusters and, when -assert-reduction
// is set, fails unless the model matches fixed-cadence steady-state skew
// at the required probe-RTT reduction. This is the CI sync-gate. Like
// the sorter-stage gates, the assertion is skipped on boxes too small to
// run the gate's companion -race property test meaningfully, so a laptop
// `make check` and CI behave the same.
func runSyncEfficiency(args []string) error {
	fs := flag.NewFlagSet("sync", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	assert := fs.Float64("assert-reduction", 0,
		"fail unless model-based sync reduces probe RTTs by at least this factor at equal-or-better steady skew (0 = report only)")
	fs.Parse(args)
	results := bench.RunSyncEfficiency(bench.SyncEfficiencyScenarios(*seed))
	bench.SyncEfficiencyTable(results).Render(os.Stdout)
	if *assert <= 0 {
		return nil
	}
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		fmt.Printf("sync: SKIP probe-reduction gate (GOMAXPROCS=%d < 4)\n", procs)
		return nil
	}
	var bad []string
	for _, r := range results {
		if r.Reduction < *assert {
			bad = append(bad, fmt.Sprintf("%s: probe reduction %.1fx < %.1fx", r.Name, r.Reduction, *assert))
		}
		if r.Model.SteadyMaxMicros > r.Fixed.SteadyMaxMicros {
			bad = append(bad, fmt.Sprintf("%s: model steady max %.0f µs worse than fixed %.0f µs",
				r.Name, r.Model.SteadyMaxMicros, r.Fixed.SteadyMaxMicros))
		}
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "sync: FAIL %s\n", b)
		}
		return fmt.Errorf("%d sync-gate failure(s)", len(bad))
	}
	fmt.Printf("sync: PASS probe reduction >= %.1fx at equal-or-better steady skew\n", *assert)
	return nil
}

func runBenchGate(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ExitOnError)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed reference file")
	out := fs.String("out", "BENCH_current.json", "where to write this run's results")
	records := fs.Int("records", 150_000, "records per session")
	batch := fs.Int("batch", 256, "records per data batch")
	sorterRecords := fs.Int("sorter-records", 100_000, "records per source in the sorter-stage sweep")
	shardRatio := fs.Float64("shardratio", 1.5, "required sorter-stage speedup of 4 shards over 1 (skipped below 4 CPUs)")
	coreRatio := fs.Float64("coreratio", 1.3, "required single-shard speedup of the calendar core over the heap core (skipped below 4 CPUs)")
	maxLoss := fs.Float64("maxloss", 0.15, "tolerated fractional throughput regression")
	allocSlack := fs.Float64("allocslack", 0.25, "tolerated extra allocations per record")
	fs.Parse(args)
	base, err := bench.ReadBenchFile(*baseline)
	if err != nil {
		return err
	}
	counts := make([]int, 0, len(base.Results))
	for _, r := range base.Results {
		counts = append(counts, r.Sessions)
	}
	rows, err := bench.RunIngestSuite(counts, *records, *batch)
	if err != nil {
		return err
	}
	bench.IngestTable(rows).Render(os.Stdout)
	fmt.Println()
	// The sorter-stage matrix runs both cores (calendar and heap) at 1 and
	// 4 shards. The 4-shard configurations need real parallelism to mean
	// anything: on fewer than 4 CPUs they run 4× SLOWER than one shard, a
	// number that would poison any cross-box comparison. Below 4 CPUs they
	// are not run at all — the rendered table carries explicit SKIP rows,
	// and WriteBenchFile omits those rows from the JSON body entirely so
	// downstream tooling never sees a `records: 0` configuration.
	procs := runtime.GOMAXPROCS(0)
	benchCores := []ols.CoreKind{ols.CoreCalendar, ols.CoreHeap}
	shardCounts := []int{1, 4}
	if procs < 4 {
		shardCounts = []int{1}
	}
	srows, err := bench.RunSorterSuite(benchCores, shardCounts, 8, *sorterRecords)
	if err != nil {
		return err
	}
	if procs < 4 {
		for _, core := range benchCores {
			srows = append(srows, bench.IngestResult{
				Name:    fmt.Sprintf("sorter/%s/shards=4", core),
				Shards:  4,
				Core:    core.String(),
				Skipped: fmt.Sprintf("GOMAXPROCS=%d < 4: shard scaling not measurable on this box", procs),
			})
		}
	}
	bench.SorterTable(srows).Render(os.Stdout)
	// The relay-hop row prices federated delivery (leaf→relay→root) at
	// the largest baseline session count. It is informational this round:
	// CompareBench only gates rows named in the baseline, so the row
	// lands in the output file without failing anyone's gate until a
	// baseline number is committed for it.
	relaySessions := 1
	for _, n := range counts {
		if n > relaySessions {
			relaySessions = n
		}
	}
	rrow, err := bench.RunRelayIngest(relaySessions, *records, *batch)
	if err != nil {
		return err
	}
	fmt.Println()
	bench.RelayTable([]bench.IngestResult{rrow}).Render(os.Stdout)
	if *out != "" {
		all := append(append([]bench.IngestResult{}, rows...), srows...)
		all = append(all, rrow)
		if err := bench.WriteBenchFile(*out, all); err != nil {
			return err
		}
	}
	bad := bench.CompareBench(base.Results, rows, *maxLoss, *allocSlack)
	// The sorter-stage gates are likewise only enforced where the hardware
	// can express them: shard scaling on the calendar (production) core,
	// and the calendar-over-heap single-shard speedup.
	byName := make(map[string]bench.IngestResult, len(srows))
	for _, r := range srows {
		byName[r.Name] = r
	}
	if procs >= 4 {
		c1 := byName["sorter/calendar/shards=1"]
		c4 := byName["sorter/calendar/shards=4"]
		h1 := byName["sorter/heap/shards=1"]
		if ratio := c4.RecordsPerSec / c1.RecordsPerSec; ratio < *shardRatio {
			bad = append(bad, fmt.Sprintf("sorter/calendar/shards=4: ×%.2f over one shard, need ×%.2f", ratio, *shardRatio))
		} else {
			fmt.Printf("benchgate: sorter-stage scaling ×%.2f at 4 shards (need ×%.2f)\n", ratio, *shardRatio)
		}
		if ratio := c1.RecordsPerSec / h1.RecordsPerSec; ratio < *coreRatio {
			bad = append(bad, fmt.Sprintf("sorter/calendar/shards=1: ×%.2f over the heap core, need ×%.2f", ratio, *coreRatio))
		} else {
			fmt.Printf("benchgate: calendar core ×%.2f over heap single-shard (need ×%.2f)\n", ratio, *coreRatio)
		}
	} else {
		fmt.Printf("benchgate: SKIP sorter shard-scaling and core-speedup gates (GOMAXPROCS=%d < 4)\n", procs)
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s\n", b)
		}
		return fmt.Errorf("%d regression(s) vs %s", len(bad), *baseline)
	}
	fmt.Printf("benchgate: PASS vs %s\n", *baseline)
	return nil
}

func runOLS(args []string) error {
	fs := flag.NewFlagSet("ols", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "stream seed")
	fs.Parse(args)
	var results []bench.OLSResult
	for _, sc := range bench.DefaultOLSScenarios(*seed) {
		results = append(results, bench.RunOLS(sc))
	}
	bench.OLSTable(results).Render(os.Stdout)
	return nil
}

func runAll(args []string) error {
	fmt.Println("BRISK evaluation suite (paper Section 4)")
	fmt.Println()
	if err := runNotice(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runEXSUtil(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runThroughput(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runLatency(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runScale(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runClockSync(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runOLS(nil); err != nil {
		return err
	}
	fmt.Println()
	return runIntrusion(nil)
}
