package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"brisk/internal/scenario"
)

// runMatrix is the scenario-matrix subcommand: load a directory of
// scenario files, expand the workload × topology × clock × fault
// cross-products, run every cell that passes the filters against a real
// EXS↔ISM pipeline, assert the pipeline contracts per cell, and write the
// per-cell statistics to a bench artifact.
func runMatrix(args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	dir := fs.String("scenarios", "scenarios", "directory of scenario matrix files (*.json)")
	tag := fs.String("filter", "", "run only matrices carrying this tag (empty = all)")
	out := fs.String("out", "BENCH_scenarios.json", "where to write the per-cell report (empty = don't)")
	list := fs.Bool("list", false, "list the cells that would run, without running them")
	timeout := fs.Duration("timeout", 0, "per-cell timeout override (0 = per-spec)")
	workloads := fs.String("workloads", "", "comma-separated workload names to include")
	topologies := fs.String("topologies", "", "comma-separated topology names to include")
	clocks := fs.String("clocks", "", "comma-separated clock-regime names to include")
	faults := fs.String("faults", "", "comma-separated fault-script names to include")
	skipWorkloads := fs.String("skip-workloads", "", "comma-separated workload names to exclude")
	skipTopologies := fs.String("skip-topologies", "", "comma-separated topology names to exclude")
	skipClocks := fs.String("skip-clocks", "", "comma-separated clock-regime names to exclude")
	skipFaults := fs.String("skip-faults", "", "comma-separated fault-script names to exclude")
	verbose := fs.Bool("v", false, "stream per-cell pipeline diagnostics to stderr (equivalent to SCEN_DEBUG=1)")
	fs.Parse(args)
	if *verbose {
		scenario.SetDebug(true)
	}

	split := func(s string) []string {
		if s == "" {
			return nil
		}
		return strings.Split(s, ",")
	}
	filter := scenario.Filter{
		Tag:            *tag,
		Workloads:      split(*workloads),
		Topologies:     split(*topologies),
		Clocks:         split(*clocks),
		Faults:         split(*faults),
		SkipWorkloads:  split(*skipWorkloads),
		SkipTopologies: split(*skipTopologies),
		SkipClocks:     split(*skipClocks),
		SkipFaults:     split(*skipFaults),
	}

	matrices, err := scenario.LoadDir(*dir)
	if err != nil {
		return err
	}

	if *list {
		count := 0
		for _, m := range matrices {
			if !filter.MatchMatrix(m) {
				continue
			}
			for _, cell := range m.Expand() {
				cell := cell
				if !filter.MatchCell(&cell) {
					continue
				}
				fmt.Printf("%s (seed %#x)\n", cell.Name(), cell.Seed())
				count++
			}
		}
		fmt.Printf("matrix: %d cells selected\n", count)
		return nil
	}

	start := time.Now()
	rep := scenario.RunMatrices(matrices, scenario.RunOptions{
		Filter:  filter,
		Timeout: *timeout,
		Logf: func(format string, a ...any) {
			fmt.Printf("matrix: "+format+"\n", a...)
		},
	})
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
	}
	if len(rep.Cells) == 0 {
		return fmt.Errorf("no cells matched the filters")
	}
	if rep.Failed > 0 {
		for _, c := range rep.Cells {
			for _, f := range c.Failures {
				fmt.Fprintf(os.Stderr, "matrix: FAIL %s: %s\n", c.Cell, f)
			}
		}
		return fmt.Errorf("%d of %d cells failed", rep.Failed, len(rep.Cells))
	}
	fmt.Printf("matrix: PASS %d cells in %s (gomaxprocs=%d)\n",
		len(rep.Cells), time.Since(start).Round(time.Millisecond), rep.Env.GOMAXPROCS)
	return nil
}
