// Command ism runs the BRISK instrumentation-system manager: it listens
// for external sensors, merges and sorts their record streams, runs the
// clock-synchronization master, and writes the sorted stream to its sinks.
//
// Usage:
//
//	ism -addr :7411 -sync 5s -picl trace.picl -print
//
// With -print the sorted stream is echoed to stdout (one line per record)
// as a built-in consumer tool. Statistics are reported on SIGINT before
// exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"brisk"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7411", "TCP listen address")
		syncPeriod = flag.Duration("sync", 5*time.Second, "clock-sync polling period (0 disables)")
		syncBound  = flag.Int64("sync-uncertainty", 0, "model-based probe scheduling: probe a slave only when its predicted offset uncertainty (µs) crosses this bound (0 = fixed cadence)")
		initialT   = flag.Int64("T", 1000, "initial sorter time frame (µs)")
		halfLife   = flag.Int64("halflife", 0, "time-frame decay half-life (µs, 0=no decay)")
		policy     = flag.String("grow", "lateness", "time-frame growth policy: lateness|double|fixed")
		merge      = flag.Duration("merge", 5*time.Millisecond, "merger wake interval")
		piclPath   = flag.String("picl", "", "write a PICL ASCII trace to this file")
		piclRel    = flag.Bool("picl-relative", false, "PICL timestamps as seconds since start")
		visAddr    = flag.String("visual", "", "attach a remote visual object at host:port")
		visName    = flag.String("visual-object", "view", "remote visual object name")
		print      = flag.Bool("print", false, "echo the sorted stream to stdout")
		statsEvery = flag.Duration("stats", 0, "periodically print statistics (0 disables)")
		statsHTTP  = flag.String("stats-http", "", "serve statistics as JSON on this address")
		obsAddr    = flag.String("obs", "", "serve /metrics, /healthz and /debug/pprof on this address")
		subOn      = flag.Bool("subscribe", false, "enable the subscription engine; /subscribe, /query and /topk mount on the -obs server")
		subWindow  = flag.Int("subscribe-window", 0, "subscription hot-window byte budget (0 = default 8 MiB)")
		traceEvery = flag.Int("trace-sample", 0, "pipeline trace sampling period (0 = default 64, <0 disables)")
		heartbeat  = flag.Duration("heartbeat", 0, "per-sensor PING period for dead-peer detection (0 = default 1s, <0 disables)")
		retention  = flag.Duration("session-retention", 0, "how long a disconnected sensor's session is resumable (0 = default 2m, <0 disables)")
		maxBuf     = flag.Int("maxbuffered", 0, "sorter record bound, arms credit flow control (0 = unbounded)")
		srcQuota   = flag.Int("source-quota", 0, "per-source buffered-record cap (0 disables)")
		ackHigh    = flag.Int("ack-high", 0, "ack-gate close threshold (0 = ¾ of maxbuffered, <0 disables gating)")
		ackLow     = flag.Int("ack-low", 0, "ack-gate reopen threshold (0 = half of ack-high)")
		olsShards  = flag.Int("ols-shards", 0, "parallel sorter shards (0 or 1 = single sorter, -1 = one per CPU)")
	)
	flag.Parse()

	opts := brisk.ManagerOptions{
		Addr:          *addr,
		MergeInterval: *merge,
		Sorter: brisk.SorterOptions{
			InitialT:    *initialT,
			HalfLife:    *halfLife,
			MaxBuffered: *maxBuf,
			SourceQuota: *srcQuota,
		},
		Sync:              brisk.SyncOptions{Period: *syncPeriod, UncertaintyBound: *syncBound},
		HeartbeatInterval: *heartbeat,
		SessionRetention:  *retention,
		TraceSampleEvery:  *traceEvery,
		AckHighWater:      *ackHigh,
		AckLowWater:       *ackLow,
		OLSShards:         *olsShards,
	}
	if *subOn {
		opts.Subscribe = &brisk.SubscribeOptions{WindowBytes: *subWindow}
	}
	switch *policy {
	case "lateness":
		opts.Sorter.Policy = brisk.TimeFrameLateness
	case "double":
		opts.Sorter.Policy = brisk.TimeFrameDouble
	case "fixed":
		opts.Sorter.Policy = brisk.TimeFrameFixed
	default:
		fmt.Fprintf(os.Stderr, "ism: unknown growth policy %q\n", *policy)
		os.Exit(2)
	}
	if *piclPath != "" {
		f, err := os.Create(*piclPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ism: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		opts.PICL = &brisk.PICLOptions{
			W:        f,
			Relative: *piclRel,
			Start:    time.Now().UnixMicro(),
		}
	}

	mgr, err := brisk.StartManager(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ism: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ism: listening on %s\n", mgr.Addr())

	if *visAddr != "" {
		if err := mgr.AttachVisual(*visAddr, *visName, 4096); err != nil {
			fmt.Fprintf(os.Stderr, "ism: visual: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ism: dispatching to visual object %q at %s\n", *visName, *visAddr)
	}

	if *print {
		go func() {
			c := mgr.Consume()
			for {
				rec, ok := c.Next()
				if !ok {
					return
				}
				fmt.Println(rec.String())
			}
		}()
	}
	if *obsAddr != "" {
		obs, err := brisk.ServeObservability(*obsAddr, mgr.Metrics(), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ism: obs: %v\n", err)
			os.Exit(1)
		}
		defer obs.Close()
		fmt.Printf("ism: metrics at http://%s/metrics\n", obs.Addr())
		if mgr.MountSubscribe(obs) {
			fmt.Printf("ism: subscribe API at http://%s/subscribe\n", obs.Addr())
		}
	}
	if *statsHTTP != "" {
		ln, err := net.Listen("tcp", *statsHTTP)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ism: stats-http: %v\n", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(mgr.Stats()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("ism: statistics at http://%s/stats\n", ln.Addr())
	}
	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := mgr.Stats()
				fmt.Printf("ism: nodes=%d sessions=%d received=%d emitted=%d buffered=%d T=%dµs inversions=%d tachyons=%d syncs=%d resumed=%d deduped=%d deadPeers=%d deferred=%d gate=%v markedLost=%d\n",
					st.Connected, st.Sessions, st.Received, st.Emitted, st.SorterBuffered,
					st.Sorter.GrownTo, st.Sorter.Inversions, st.CRE.Tachyons, st.SyncRounds,
					st.ResumedSessions, st.DedupedBatches, st.DeadPeers,
					st.AckDeferred, st.CreditGateClosed, st.MarkedLost)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := mgr.Stats()
	if err := mgr.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ism: close: %v\n", err)
	}
	fmt.Printf("ism: final stats: nodes=%d received=%d emitted=%d batches=%d inversions=%d tachyons=%d syncRounds=%d resumed=%d deduped=%d deadPeers=%d\n",
		st.Connected, st.Received, st.Emitted, st.Batches,
		st.Sorter.Inversions, st.CRE.Tachyons, st.SyncRounds,
		st.ResumedSessions, st.DedupedBatches, st.DeadPeers)
}
