// Command relay runs one intermediate tier of a federated BRISK
// deployment: a full instrumentation-system manager for a regional
// sensor fleet (local sort, correction, child-tier clock sync) whose
// merged output is forwarded upstream to a parent manager as a single
// high-rate session. Stack relays to build a hierarchy; the root ism
// re-merges the regional streams into the global order.
//
// Usage:
//
//	relay -addr :7412 -parent 127.0.0.1:7411 -name region-a -node-base 1000
//
// Statistics are reported on SIGINT before exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"brisk"
	"brisk/internal/ism"
	"brisk/internal/ols"
	"brisk/internal/relay"
	"brisk/internal/vclock"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7412", "TCP listen address for the regional fleet")
		parent   = flag.String("parent", "127.0.0.1:7411", "parent manager address the merged stream forwards to")
		name     = flag.String("name", hostnameOr("relay"), "node name announced upstream")
		nodeBase = flag.Int("node-base", 0, "added to forwarded origin node ids; give relay i a base of i×(fleet size)")
		skew     = flag.Duration("skew", 0, "initial clock offset (simulated, e.g. -50ms)")
		drift    = flag.Float64("drift", 0, "clock frequency error in ppm (simulated)")

		syncPeriod = flag.Duration("sync", 5*time.Second, "child-tier clock-sync polling period (0 disables)")
		initialT   = flag.Int64("T", 1000, "regional sorter initial time frame (µs); widen the parent's by 2× plus slack")
		merge      = flag.Duration("merge", 5*time.Millisecond, "regional merger wake interval")
		maxBuf     = flag.Int("maxbuffered", 0, "regional sorter record bound, arms credit flow control (0 = unbounded)")
		olsShards  = flag.Int("ols-shards", 0, "regional sorter shards (0 or 1 = single sorter, -1 = one per CPU)")

		batch         = flag.Int("batch", 0, "records per uplink batch (0 = default 256)")
		flush         = flag.Duration("flush", 0, "partial uplink batch flush interval (0 = default 2ms)")
		queue         = flag.Int("queue", 0, "bytes of unacknowledged uplink batches buffered across outages (0 = default 4MiB)")
		reconnectBase = flag.Duration("reconnect-base", 0, "first uplink reconnect backoff delay (0 = default 50ms)")
		reconnectMax  = flag.Duration("reconnect-max", 0, "uplink reconnect backoff cap (0 = default 5s)")
		reconnectCap  = flag.Int("reconnect-attempts", -1, "failed uplink reconnects before giving up (-1 = retry forever)")

		statsEvery = flag.Duration("stats", 0, "periodically print statistics (0 disables)")
		statsHTTP  = flag.String("stats-http", "", "serve statistics as JSON on this address")
		obsAddr    = flag.String("obs", "", "serve /metrics, /healthz and /debug/pprof on this address")
	)
	flag.Parse()

	var raw vclock.Clock = vclock.System{}
	if *skew != 0 || *drift != 0 {
		raw = vclock.NewDrift(vclock.System{}, skew.Microseconds(), *drift)
	}
	rl, err := relay.New(relay.Config{
		Addr:     *addr,
		Parent:   *parent,
		Name:     *name,
		NodeBase: int32(*nodeBase),
		Clock:    raw,
		ISM: ism.Config{
			SyncPeriod:    *syncPeriod,
			MergeInterval: *merge,
			Sorter:        ols.Config{InitialT: *initialT, MaxBuffered: *maxBuf},
			OLSShards:     *olsShards,
		},
		BatchRecords:         *batch,
		FlushInterval:        *flush,
		QueueBytes:           *queue,
		ReconnectBase:        *reconnectBase,
		ReconnectMax:         *reconnectMax,
		MaxReconnectAttempts: *reconnectCap,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "relay: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("relay: node %d (%s) listening on %s, forwarding to %s\n",
		rl.Node(), *name, rl.Addr(), *parent)

	if *obsAddr != "" {
		obs, err := brisk.ServeObservability(*obsAddr, rl.Metrics(), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relay: obs: %v\n", err)
			os.Exit(1)
		}
		defer obs.Close()
		fmt.Printf("relay: metrics at http://%s/metrics\n", obs.Addr())
	}
	if *statsHTTP != "" {
		ln, err := net.Listen("tcp", *statsHTTP)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relay: stats-http: %v\n", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rl.Stats()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("relay: statistics at http://%s/stats\n", ln.Addr())
	}
	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := rl.Stats()
				fmt.Printf("relay: online=%v fleet=%d received=%d forwarded=%d shipped=%d backlog=%d queued=%dB reconnects=%d markedLost=%d corr=%dµs\n",
					st.Online, st.ISM.Connected, st.ISM.Received, st.Forwarded,
					st.Shipped, st.BacklogRecords, st.QueuedBytes,
					st.Reconnects, st.MarkedLost+st.ISM.MarkedLost, st.Correction)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := rl.Stats()
	if err := rl.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "relay: close: %v\n", err)
	}
	fmt.Printf("relay: final stats: fleet=%d received=%d forwarded=%d shipped=%d batches=%d retransmits=%d reconnects=%d dropped=%d markedLost=%d corr=%dµs\n",
		st.ISM.Connected, st.ISM.Received, st.Forwarded, st.Shipped,
		st.Batches, st.Retransmits, st.Reconnects, st.Dropped,
		st.MarkedLost+st.ISM.MarkedLost, st.Correction)
}

func hostnameOr(fallback string) string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return fallback
}
