// Command docscheck is the repository's documentation gate: it walks
// every Markdown file and verifies that each relative link — inline
// [text](target) and reference-style [label]: target — resolves to a
// file or directory in the tree. External URLs and intra-document
// anchors are skipped; a `#fragment` on a resolving file link is
// accepted without checking the heading. It also verifies that the
// repository's core documents (README, ARCHITECTURE, DESIGN, TUNING,
// OBSERVABILITY, EXPERIMENTS, ROADMAP) exist at the root, so renaming
// or dropping one fails the gate instead of silently orphaning its
// inbound links.
//
// Usage:
//
//	docscheck [root]
//
// Exits non-zero listing every broken link. Run via `make docs-check`.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links, capturing the target. Images
// (![alt](target)) match too, which is what we want.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// refRE matches reference-style definitions: [label]: target
var refRE = regexp.MustCompile(`(?m)^\[[^\]]+\]:\s+(\S+)`)

// skipDirs are trees never scanned for Markdown or used as link targets.
var skipDirs = map[string]bool{".git": true, "testdata": false}

// requiredDocs must exist at the repository root: the documentation set
// the rest of the tree links into.
var requiredDocs = []string{
	"README.md", "ARCHITECTURE.md", "DESIGN.md", "TUNING.md",
	"OBSERVABILITY.md", "EXPERIMENTS.md", "ROADMAP.md",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	for _, doc := range requiredDocs {
		if _, err := os.Stat(filepath.Join(root, doc)); err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: required document %s missing\n", doc)
			broken++
		}
	}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		broken += checkFile(path)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Println("docscheck: all Markdown links resolve")
}

// checkFile verifies every relative link in one Markdown file, printing
// each broken one, and returns how many were broken.
func checkFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %s: %v\n", path, err)
		return 1
	}
	broken := 0
	targets := make([]string, 0, 16)
	for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
		targets = append(targets, m[1])
	}
	for _, m := range refRE.FindAllStringSubmatch(string(data), -1) {
		targets = append(targets, m[1])
	}
	for _, target := range targets {
		if !checkTarget(path, target) {
			fmt.Fprintf(os.Stderr, "docscheck: %s: broken link %q\n", path, target)
			broken++
		}
	}
	return broken
}

// checkTarget reports whether one link target from the given file
// resolves. Non-relative targets (URLs, mailto, pure anchors) pass.
func checkTarget(from, target string) bool {
	if strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#") {
		return true
	}
	// Drop a trailing #fragment; the file part is what must exist.
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
		if target == "" {
			return true
		}
	}
	_, err := os.Stat(filepath.Join(filepath.Dir(from), target))
	return err == nil
}
