package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestGenerateParsesAsGo(t *testing.T) {
	src, err := generate("Txn", []string{"i64", "i32", "str"})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
	for _, want := range []string{
		"func (s *Sensor) NoticeTxn(event uint8, a0 int64, a1 int32, a2 string) bool",
		"xdr.AppendInt64(buf, a0)",
		"xdr.AppendInt32(buf, a1)",
		"xdr.AppendString(buf, a2)",
		"uint32(record.TS) << 28",
		"uint32(record.String) << 16",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateFixedSizeUsesConst(t *testing.T) {
	src, err := generate("Pair", []string{"i32", "i32"})
	if err != nil {
		t.Fatal(err)
	}
	// HeaderSize + 8 (TS) + 4 + 4.
	if !strings.Contains(src, "const size = record.HeaderSize + 16") {
		t.Fatalf("fixed-size notice should use a const size:\n%s", src)
	}
	if strings.Contains(src, "size > 0xFFFF") {
		t.Error("fixed-size notice should not carry the overflow check")
	}
}

func TestGenerateVariableSizeChecked(t *testing.T) {
	src, err := generate("Msg", []string{"str"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "size := record.HeaderSize + 8 + xdr.OpaqueLen(len(a0))") {
		t.Fatalf("variable size expression wrong:\n%s", src)
	}
	if !strings.Contains(src, "size > 0xFFFF") {
		t.Error("variable-size notice must guard against oversize records")
	}
}

func TestGenerateCausalFields(t *testing.T) {
	src, err := generate("Link", []string{"reason", "i32"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "uint32(record.Reason) << 24") {
		t.Fatalf("reason nibble missing:\n%s", src)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("", []string{"i32"}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := generate("X", nil); err == nil {
		t.Error("no fields accepted")
	}
	if _, err := generate("X", []string{"quux"}); err == nil {
		t.Error("unknown field type accepted")
	}
	eight := make([]string, 8)
	for i := range eight {
		eight[i] = "i32"
	}
	if _, err := generate("X", eight); err == nil {
		t.Error("8 fields + TS accepted (exceeds record limit)")
	}
	seven := eight[:7]
	if _, err := generate("X", seven); err != nil {
		t.Errorf("7 fields + TS rejected: %v", err)
	}
}

func TestGenerateAllTypesParse(t *testing.T) {
	for ft := range fieldSpecs {
		src, err := generate("T", []string{ft})
		if err != nil {
			t.Fatalf("%s: %v", ft, err)
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "g.go", src, 0); err != nil {
			t.Fatalf("%s: parse: %v", ft, err)
		}
	}
}
