// Command mknotice generates specialized notice methods for the sensor
// package — the reproduction of the paper's utility tool that creates
// custom NOTICE macros with user-defined field types and inserts them into
// the sensors header file ("an on-demand partial evaluation/specialization
// of sensors that results in smaller and faster code").
//
// Usage:
//
//	mknotice -name Txn -fields i64,i32,str -o internal/sensor/zz_notice_txn.go
//
// The generated method Notice<Name> encodes its record in a single pass
// with no allocation, exactly like the hand-written Notice6i; a timestamp
// field is always embedded first. Field types: i8 u8 i16 u16 i32 u32 i64
// u64 f32 f64 bool str reason conseq (at most 7, plus the timestamp).
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"strings"
)

func main() {
	var (
		name   = flag.String("name", "", "notice name suffix (e.g. Txn -> NoticeTxn)")
		fields = flag.String("fields", "", "comma-separated field types (e.g. i32,i32,str)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var list []string
	for _, f := range strings.Split(*fields, ",") {
		if f = strings.TrimSpace(f); f != "" {
			list = append(list, f)
		}
	}
	src, err := generate(*name, list)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	formatted, err := format.Source([]byte(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mknotice: internal error, generated code invalid: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(formatted)
		return
	}
	if err := os.WriteFile(*out, formatted, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mknotice: %v\n", err)
		os.Exit(1)
	}
}
