// Package cmd_test builds the actual executables and drives a real
// multi-process session: one ism process, two exs processes (one with a
// deliberately skewed clock), a PICL trace on disk, and brisktrace over
// the result — the paper's deployment shape, end to end.
package cmd_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildAll compiles the binaries once into a shared temp dir.
func buildAll(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"ism", "exs", "relay", "brisktrace", "mknotice", "briskbench"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./"+tool)
		cmd.Dir = "." // cmd/ directory
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

// freePort grabs an ephemeral TCP port for the manager.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("ism never listened on %s", addr)
}

func TestMultiProcessSession(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process session in -short mode")
	}
	bin := buildAll(t)
	addr := freePort(t)
	trace := filepath.Join(t.TempDir(), "session.picl")

	ism := exec.Command(filepath.Join(bin, "ism"),
		"-addr", addr, "-sync", "100ms", "-picl", trace, "-T", "2000")
	var ismOut strings.Builder
	ism.Stdout = &ismOut
	ism.Stderr = &ismOut
	if err := ism.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if ism.Process != nil {
			ism.Process.Kill()
			ism.Wait()
		}
	}()
	waitListening(t, addr)

	// Two nodes: 300 events each at 3 kHz; node B starts 20 ms behind.
	runEXS := func(name string, extra ...string) *exec.Cmd {
		args := append([]string{
			"-manager", addr, "-name", name,
			"-rate", "3000", "-count", "300",
		}, extra...)
		c := exec.Command(filepath.Join(bin, "exs"), args...)
		c.Stdout = os.Stderr
		c.Stderr = os.Stderr
		return c
	}
	a := runEXS("proc-a")
	b := runEXS("proc-b", "-skew", "-20ms")
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatalf("exs a: %v", err)
	}
	if err := b.Wait(); err != nil {
		t.Fatalf("exs b: %v", err)
	}

	// Give the manager time to flush the sorter, then stop it cleanly so
	// it flushes the PICL file.
	time.Sleep(500 * time.Millisecond)
	if err := ism.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ism.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("ism did not exit on SIGINT")
	}
	if !strings.Contains(ismOut.String(), "received=600") {
		t.Fatalf("ism final stats missing records:\n%s", ismOut.String())
	}

	// The trace must hold all 600 records, time-ordered, from 2 nodes.
	out, err := exec.Command(filepath.Join(bin, "brisktrace"), trace).CombinedOutput()
	if err != nil {
		t.Fatalf("brisktrace: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "records: 600") {
		t.Fatalf("trace record count wrong:\n%s", text)
	}
	// The adaptive time frame is reactive: the first records from the
	// 20 ms-skewed node may be emitted before the sorter has observed
	// their lateness and grown T, so a handful of early inversions is the
	// documented behaviour; a clean steady state keeps the total tiny.
	inv := -1
	fmt.Sscanf(text[strings.Index(text, "inversions:"):], "inversions: %d", &inv)
	if inv < 0 || inv > 5 {
		t.Fatalf("merged trace inversions = %d, want ≤5:\n%s", inv, text)
	}
	for _, node := range []string{"   1      ", "   2      "} {
		if !strings.Contains(text, node) {
			t.Fatalf("node attribution missing:\n%s", text)
		}
	}
}

// TestFederatedMultiProcessSession stacks the real executables into the
// hierarchical deployment: a root ism, one relay process fronting the
// regional fleet, and two exs processes attached to the relay. The root
// trace must hold every record, rebased onto the relay's node-id range,
// with the relay's wider root time frame keeping the merged order clean.
func TestFederatedMultiProcessSession(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process session in -short mode")
	}
	bin := buildAll(t)
	rootAddr := freePort(t)
	relayAddr := freePort(t)
	trace := filepath.Join(t.TempDir(), "federated.picl")

	// The relay tier parks records for up to its own time frame before
	// forwarding, so the root's frame is widened per the composed-window
	// rule (2× the tier frame plus merge/flush slack).
	ism := exec.Command(filepath.Join(bin, "ism"),
		"-addr", rootAddr, "-sync", "100ms", "-picl", trace, "-T", "50000")
	var ismOut strings.Builder
	ism.Stdout = &ismOut
	ism.Stderr = &ismOut
	if err := ism.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if ism.Process != nil {
			ism.Process.Kill()
			ism.Wait()
		}
	}()
	waitListening(t, rootAddr)

	relay := exec.Command(filepath.Join(bin, "relay"),
		"-addr", relayAddr, "-parent", rootAddr, "-name", "region-a",
		"-node-base", "100", "-sync", "100ms", "-T", "2000")
	var relayOut strings.Builder
	relay.Stdout = &relayOut
	relay.Stderr = &relayOut
	if err := relay.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if relay.Process != nil {
			relay.Process.Kill()
			relay.Wait()
		}
	}()
	waitListening(t, relayAddr)

	runEXS := func(name string, extra ...string) *exec.Cmd {
		args := append([]string{
			"-manager", relayAddr, "-name", name,
			"-rate", "3000", "-count", "300",
		}, extra...)
		c := exec.Command(filepath.Join(bin, "exs"), args...)
		c.Stdout = os.Stderr
		c.Stderr = os.Stderr
		return c
	}
	a := runEXS("fed-a")
	b := runEXS("fed-b", "-skew", "-20ms")
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatalf("exs a: %v", err)
	}
	if err := b.Wait(); err != nil {
		t.Fatalf("exs b: %v", err)
	}

	// Tier-ordered shutdown: the relay's SIGINT flushes its sorter through
	// the uplink and drains acks, then the root's SIGINT flushes the trace.
	time.Sleep(500 * time.Millisecond)
	stop := func(name string, cmd *exec.Cmd) {
		t.Helper()
		if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not exit on SIGINT", name)
		}
	}
	stop("relay", relay)
	if !strings.Contains(relayOut.String(), "forwarded=600") {
		t.Fatalf("relay final stats missing records:\n%s", relayOut.String())
	}
	stop("ism", ism)
	if !strings.Contains(ismOut.String(), "received=600") {
		t.Fatalf("ism final stats missing records:\n%s", ismOut.String())
	}

	out, err := exec.Command(filepath.Join(bin, "brisktrace"), trace).CombinedOutput()
	if err != nil {
		t.Fatalf("brisktrace: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "records: 600") {
		t.Fatalf("trace record count wrong:\n%s", text)
	}
	inv := -1
	fmt.Sscanf(text[strings.Index(text, "inversions:"):], "inversions: %d", &inv)
	if inv < 0 || inv > 5 {
		t.Fatalf("merged trace inversions = %d, want ≤5:\n%s", inv, text)
	}
	// The relay rebases the fleet's session ids onto its -node-base range.
	for _, node := range []string{" 101      ", " 102      "} {
		if !strings.Contains(text, node) {
			t.Fatalf("rebased node attribution missing:\n%s", text)
		}
	}
}

func TestMknoticeCLI(t *testing.T) {
	bin := buildAll(t)
	out, err := exec.Command(filepath.Join(bin, "mknotice"),
		"-name", "Demo", "-fields", "i32,str").CombinedOutput()
	if err != nil {
		t.Fatalf("mknotice: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "func (s *Sensor) NoticeDemo(event uint8, a0 int32, a1 string) bool") {
		t.Fatalf("unexpected generator output:\n%s", out)
	}
	// Invalid spec exits nonzero.
	if _, err := exec.Command(filepath.Join(bin, "mknotice"),
		"-name", "X", "-fields", "bogus").CombinedOutput(); err == nil {
		t.Fatal("mknotice accepted a bogus field type")
	}
}

func TestISMRejectsBadFlags(t *testing.T) {
	bin := buildAll(t)
	out, err := exec.Command(filepath.Join(bin, "ism"),
		"-addr", "127.0.0.1:0", "-grow", "nonsense").CombinedOutput()
	if err == nil {
		t.Fatalf("ism accepted bad growth policy:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown growth policy") {
		t.Fatalf("unexpected error output: %s", out)
	}
}

// TestBriskbenchCLI smoke-runs the fast, deterministic experiments
// through the real evaluation binary.
func TestBriskbenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test in -short mode")
	}
	bin := buildAll(t)
	out, err := exec.Command(filepath.Join(bin, "briskbench"),
		"notice", "-iters", "5000").CombinedOutput()
	if err != nil {
		t.Fatalf("briskbench notice: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "E1: notice cost") {
		t.Fatalf("missing E1 table:\n%s", out)
	}
	out, err = exec.Command(filepath.Join(bin, "briskbench"), "ols").CombinedOutput()
	if err != nil {
		t.Fatalf("briskbench ols: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "grow-to-lateness") {
		t.Fatalf("missing E7 rows:\n%s", out)
	}
	out, err = exec.Command(filepath.Join(bin, "briskbench"), "clocksync").CombinedOutput()
	if err != nil {
		t.Fatalf("briskbench clocksync: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "quiet LAN") {
		t.Fatalf("missing E6 rows:\n%s", out)
	}
	// Unknown experiment exits nonzero with usage.
	if _, err := exec.Command(filepath.Join(bin, "briskbench"), "bogus").CombinedOutput(); err == nil {
		t.Fatal("briskbench accepted an unknown experiment")
	}
}

func TestMain(m *testing.M) {
	// Run from the cmd/ directory so relative package paths resolve.
	if _, err := os.Stat("ism"); err != nil {
		fmt.Fprintln(os.Stderr, "integration tests must run from cmd/")
	}
	os.Exit(m.Run())
}

// TestISMStatsHTTP checks the operational JSON statistics endpoint.
func TestISMStatsHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	bin := buildAll(t)
	addr := freePort(t)
	statsAddr := freePort(t)
	ism := exec.Command(filepath.Join(bin, "ism"),
		"-addr", addr, "-sync", "0", "-stats-http", statsAddr)
	if err := ism.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ism.Process.Kill()
		ism.Wait()
	}()
	waitListening(t, addr)
	waitListening(t, statsAddr)

	exs := exec.Command(filepath.Join(bin, "exs"),
		"-manager", addr, "-rate", "0", "-count", "50")
	if out, err := exs.CombinedOutput(); err != nil {
		t.Fatalf("exs: %v\n%s", err, out)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + statsAddr + "/stats")
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		var st map[string]any
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if recv, ok := st["Received"].(float64); ok && recv == 50 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("stats endpoint never reported the received records")
}

// TestISMObservabilityHTTP drives a real ism process with -obs and checks
// the Prometheus exposition covers the acceptance surface: the sorter's
// window T, the causal matcher's tachyon counter, and the per-session
// batch/dedupe counters, plus a healthy /healthz.
func TestISMObservabilityHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	bin := buildAll(t)
	addr := freePort(t)
	obsAddr := freePort(t)
	ism := exec.Command(filepath.Join(bin, "ism"),
		"-addr", addr, "-sync", "0", "-obs", obsAddr)
	if err := ism.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ism.Process.Kill()
		ism.Wait()
	}()
	waitListening(t, addr)
	waitListening(t, obsAddr)

	exs := exec.Command(filepath.Join(bin, "exs"),
		"-manager", addr, "-rate", "0", "-count", "50")
	if out, err := exs.CombinedOutput(); err != nil {
		t.Fatalf("exs: %v\n%s", err, out)
	}

	resp, err := http.Get("http://" + obsAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}

	want := []string{
		"# TYPE brisk_ols_window_microseconds gauge",
		"brisk_cre_tachyons_total",
		"brisk_ism_session_batches_total{node=\"1\",session=\"",
		"brisk_ism_session_deduped_total{node=\"1\",session=\"",
		"brisk_ism_records_received_total 50",
	}
	deadline := time.Now().Add(10 * time.Second)
	var body string
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + obsAddr + "/metrics")
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(raw)
		ok := true
		for _, w := range want {
			if !strings.Contains(body, w) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, w := range want {
		if !strings.Contains(body, w) {
			t.Errorf("metrics output missing %q", w)
		}
	}
	t.Fatalf("exposition never converged; last body:\n%s", body)
}
