// Command brisktrace is an instrumentation-data analysis tool: it reads a
// PICL ASCII trace produced by the ISM and prints either the records or a
// per-node/per-event summary — the kind of extant, independently-built
// consumer BRISK's output formats exist to serve.
//
// Usage:
//
//	brisktrace trace.picl                      # summary
//	brisktrace -dump trace.picl                # every record
//	brisktrace -event 3 trace.picl             # summary of one event class
//	brisktrace -profile 10:11:compute t.picl   # pair begin/end events
//
// The -profile mode (begin:end:name, repeatable with commas) emulates a
// profiling monitor from the event trace, pairing bracketed regions per
// node — the hybrid-monitoring emulation the paper's flexibility section
// describes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"brisk/internal/picl"
	"brisk/internal/profile"
	"brisk/internal/record"
	"brisk/internal/stats"
)

func main() {
	var (
		dump     = flag.Bool("dump", false, "print every record instead of a summary")
		event    = flag.Int("event", -1, "restrict to one event class")
		profSpec = flag.String("profile", "", "profile begin:end:name pairs, comma separated")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: brisktrace [-dump] [-event N] [-profile B:E:name,...] <trace.picl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "brisktrace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if *profSpec != "" {
		err = runProfile(f, *profSpec)
	} else {
		err = run(f, *dump, *event)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "brisktrace: %v\n", err)
		os.Exit(1)
	}
}

// parseRules parses "10:11:compute,20:21:io".
func parseRules(spec string) ([]profile.PairRule, error) {
	var rules []profile.PairRule
	for _, part := range strings.Split(spec, ",") {
		bits := strings.SplitN(strings.TrimSpace(part), ":", 3)
		if len(bits) != 3 {
			return nil, fmt.Errorf("bad profile rule %q (want begin:end:name)", part)
		}
		b, err := strconv.ParseUint(bits[0], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("bad begin event in %q: %v", part, err)
		}
		e, err := strconv.ParseUint(bits[1], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("bad end event in %q: %v", part, err)
		}
		rules = append(rules, profile.PairRule{Begin: uint8(b), End: uint8(e), Name: bits[2]})
	}
	return rules, nil
}

func runProfile(r io.Reader, spec string) error {
	rules, err := parseRules(spec)
	if err != nil {
		return err
	}
	p := profile.New(rules)
	rd := picl.NewReader(r)
	for {
		ln, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		rec := record.New(ln.Event, append([]record.Value{record.TSVal(ln.TimeMicros)}, ln.Fields...)...)
		rec.Node = ln.Node
		p.Feed(&rec)
	}
	fmt.Print(p.String())
	if n := p.OpenRegions(); n > 0 {
		fmt.Printf("regions still open at end of trace: %d\n", n)
	}
	return nil
}

type key struct {
	node  int32
	event uint8
}

func run(r io.Reader, dump bool, eventFilter int) error {
	rd := picl.NewReader(r)
	counts := make(map[key]int)
	gaps := make(map[int32]*stats.Running)
	lastTS := make(map[int32]int64)
	var first, last int64
	var total int
	inversions := 0
	var prevTS int64

	for {
		ln, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if eventFilter >= 0 && int(ln.Event) != eventFilter {
			continue
		}
		if dump {
			fmt.Printf("t=%dµs node=%d ev=%d fields=%d\n",
				ln.TimeMicros, ln.Node, ln.Event, len(ln.Fields))
		}
		if total == 0 {
			first = ln.TimeMicros
		} else if ln.TimeMicros < prevTS {
			inversions++
		}
		prevTS = ln.TimeMicros
		last = ln.TimeMicros
		total++
		counts[key{ln.Node, ln.Event}]++
		if prev, ok := lastTS[ln.Node]; ok {
			g, ok := gaps[ln.Node]
			if !ok {
				g = &stats.Running{}
				gaps[ln.Node] = g
			}
			g.Add(float64(ln.TimeMicros - prev))
		}
		lastTS[ln.Node] = ln.TimeMicros
	}

	if dump {
		return nil
	}
	fmt.Printf("records: %d  span: %d µs  inversions: %d\n", total, last-first, inversions)
	if total == 0 {
		return nil
	}
	var keys []key
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].event < keys[j].event
	})
	fmt.Println("\nnode  event  count")
	for _, k := range keys {
		fmt.Printf("%4d  %5d  %5d\n", k.node, k.event, counts[k])
	}
	fmt.Println("\nper-node inter-event gap (µs):")
	var nodes []int32
	for n := range gaps {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fmt.Printf("  node %d: %s\n", n, gaps[n].String())
	}
	return nil
}
