// Command exs runs one BRISK node: the external sensor connected to the
// manager, plus (optionally) the paper's looping demo application writing
// six-int-field notices into the node's shared-memory rings.
//
// In the original system the external sensor is a separate OS process
// reading SysV shared memory written by instrumented applications. In this
// reproduction a node is one process whose application goroutines and
// external sensor share the ring buffers — the same data path with the
// process boundary folded into the runtime.
//
// Usage:
//
//	exs -manager 127.0.0.1:7411 -name node1 -rate 10000 -count 100000
//	exs -manager 127.0.0.1:7411 -skew -50ms -drift 20    # simulated bad clock
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"brisk"
	"brisk/internal/vclock"
	"brisk/internal/workload"
)

func main() {
	var (
		manager = flag.String("manager", "127.0.0.1:7411", "manager TCP address")
		name    = flag.String("name", hostnameOr("node"), "node name")
		rate    = flag.Int("rate", 1000, "events per second per sensor (0 = unpaced)")
		count   = flag.Int("count", 0, "events per sensor (0 = run until SIGINT)")
		sensors = flag.Int("sensors", 1, "number of instrumented application goroutines")
		skew    = flag.Duration("skew", 0, "initial clock offset (simulated, e.g. -50ms)")
		drift   = flag.Float64("drift", 0, "clock frequency error in ppm (simulated)")
		flush   = flag.Duration("flush", 5*time.Millisecond, "batch flush interval")
		batch   = flag.Int("batch", 16384, "batch size in bytes")

		reconnectBase = flag.Duration("reconnect-base", 0, "first reconnect backoff delay (0 = default 50ms)")
		reconnectMax  = flag.Duration("reconnect-max", 0, "reconnect backoff cap (0 = default 5s)")
		reconnectCap  = flag.Int("reconnect-attempts", -1, "failed reconnect attempts before giving up (-1 = retry forever)")
		spill         = flag.Int("spill", 0, "bytes of unacknowledged records buffered across outages (0 = default 4MiB)")
		obsAddr       = flag.String("obs", "", "serve /metrics, /healthz and /debug/pprof on this address")
		traceEvery    = flag.Int("trace-sample", 0, "pipeline trace sampling period (0 = default 64, <0 disables)")
	)
	flag.Parse()

	var raw brisk.Clock = vclock.System{}
	if *skew != 0 || *drift != 0 {
		raw = vclock.NewDrift(vclock.System{}, skew.Microseconds(), *drift)
	}
	node, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr:          *manager,
		Name:                 *name,
		RawClock:             raw,
		BatchBytes:           *batch,
		FlushInterval:        *flush,
		ReconnectBase:        *reconnectBase,
		ReconnectMax:         *reconnectMax,
		MaxReconnectAttempts: *reconnectCap,
		SpillBytes:           *spill,
		TraceSampleEvery:     *traceEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "exs: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("exs: node %d (%s) connected to %s\n", node.ID(), *name, *manager)

	if *obsAddr != "" {
		obs, err := brisk.ServeObservability(*obsAddr, node.Metrics(), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exs: obs: %v\n", err)
			os.Exit(1)
		}
		defer obs.Close()
		fmt.Printf("exs: metrics at http://%s/metrics\n", obs.Addr())
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *sensors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := node.NewSensor(fmt.Sprintf("app-%d", i))
			l := &workload.Looper{Sensor: s, Event: uint8(1 + i%200), Rate: *rate}
			if *count > 0 {
				l.Run(*count)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
					l.Run(1000)
				}
			}
		}(i)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		close(stop)
		wg.Wait()
	case <-done:
	}
	node.Flush()
	time.Sleep(50 * time.Millisecond) // let the final batch ship
	st := node.Stats()
	if err := node.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "exs: close: %v\n", err)
	}
	fmt.Printf("exs: sent=%d batches=%d bytes=%d ringDropped=%d probes=%d correction=%dµs\n",
		st.Sent, st.Batches, st.BytesOut, st.RingDropped, st.Probes, st.Correction)
	if st.Reconnects > 0 || st.Dropped > 0 || st.LostOffline > 0 {
		fmt.Printf("exs: reconnects=%d retransmits=%d spilled=%d dropped=%d lostOffline=%d\n",
			st.Reconnects, st.Retransmits, st.Spilled, st.Dropped, st.LostOffline)
	}
	if st.CreditStalls > 0 || st.LossMarkers > 0 {
		fmt.Printf("exs: creditStalls=%d lossMarkers=%d markedLost=%d\n",
			st.CreditStalls, st.LossMarkers, st.MarkedLost)
	}
}

func hostnameOr(def string) string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return def
}
