// Command briskview hosts visual objects: it is the remote consumer end
// of the ISM's visualization dispatch (the paper's CORBA visual-object
// framework, reproduced over a framed TCP protocol). Each registered
// object receives the sorted instrumentation stream as PICL strings.
//
// Two built-in objects are provided:
//
//	view  — prints every line to stdout
//	rate  — prints a once-per-second event-rate summary per node
//
// Usage:
//
//	briskview -addr 127.0.0.1:7500
//	ism -visual 127.0.0.1:7500 -visual-object rate
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"brisk/internal/visual"
)

// ratesObject accumulates per-node counts and prints a line each second.
type ratesObject struct {
	mu     sync.Mutex
	counts map[string]int
}

func newRatesObject() *ratesObject {
	r := &ratesObject{counts: make(map[string]int)}
	go func() {
		for range time.Tick(time.Second) {
			r.mu.Lock()
			if len(r.counts) > 0 {
				var parts []string
				total := 0
				for node, c := range r.counts {
					parts = append(parts, fmt.Sprintf("node %s: %d/s", node, c))
					total += c
				}
				fmt.Printf("rate: %d events/s (%s)\n", total, strings.Join(parts, ", "))
				r.counts = make(map[string]int)
			}
			r.mu.Unlock()
		}
	}()
	return r
}

// ProcessPICL implements visual.Object: column 4 of a PICL line is the
// node number.
func (r *ratesObject) ProcessPICL(line string) error {
	cols := strings.Fields(line)
	if len(cols) < 4 {
		return nil
	}
	if _, err := strconv.Atoi(cols[3]); err != nil {
		return nil
	}
	r.mu.Lock()
	r.counts[cols[3]]++
	r.mu.Unlock()
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7500", "listen address")
	flag.Parse()

	srv := visual.NewServer()
	srv.Register("view", visual.ObjectFunc(func(line string) error {
		fmt.Println(line)
		return nil
	}))
	srv.Register("rate", newRatesObject())

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "briskview: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("briskview: serving objects [view rate] on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	fmt.Printf("briskview: %d calls delivered, %d to unknown objects\n",
		srv.Calls.Load(), srv.Unknown.Load())
}
