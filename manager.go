package brisk

import (
	"io"
	"net/http"
	"time"

	"brisk/internal/clocksync"
	"brisk/internal/ism"
	"brisk/internal/ols"
	"brisk/internal/picl"
	"brisk/internal/subscribe"
	"brisk/internal/visual"
)

// TimeFramePolicy selects how the manager's on-line sorter adapts its
// delay window T when it observes records arriving out of order.
type TimeFramePolicy int

const (
	// TimeFrameLateness sets T to the latest late event's lateness — the
	// paper's recommended strategy for latency-critical applications.
	TimeFrameLateness TimeFramePolicy = iota
	// TimeFrameDouble doubles T on each inversion.
	TimeFrameDouble
	// TimeFrameFixed never adapts T.
	TimeFrameFixed
)

func (p TimeFramePolicy) grow() ols.GrowPolicy {
	switch p {
	case TimeFrameDouble:
		return ols.GrowDouble
	case TimeFrameFixed:
		return ols.GrowFixed
	default:
		return ols.GrowToLateness
	}
}

// SorterOptions tunes the on-line sorting algorithm.
type SorterOptions struct {
	// InitialT is the starting delay window in µs (default 1000).
	InitialT int64
	// MinT and MaxT bound the window (defaults 0 and 10 s).
	MinT, MaxT int64
	// HalfLife is the exponential-decay half-life of T in µs; 0 keeps T
	// from decaying. A large half-life (small decay exponent) is the
	// paper's recommendation outside latency-critical use.
	HalfLife int64
	// Policy selects the growth rule.
	Policy TimeFramePolicy
	// MaxBuffered bounds records delayed in memory (0 = unbounded).
	MaxBuffered int
	// SourceQuota bounds how many records one source may hold buffered at
	// once (0 = no per-source bound). With MaxBuffered set, a quota keeps
	// one misbehaving node from monopolizing the sorter: its excess is
	// dropped (and represented by a loss marker) while other nodes'
	// records still flow.
	SourceQuota int
	// Core selects the in-window data structure: the default calendar
	// queue (amortized O(1) per record, falls back to the heap on
	// pathological skew) or the binary heap baseline. Both emit
	// identically; this is purely a performance knob (see TUNING.md).
	Core SorterCore
}

// SorterCore selects the sorter's in-window data structure.
type SorterCore = ols.CoreKind

// The sorter cores. CoreCalendar (the zero value) is the production
// default; CoreHeap forces the baseline binary heap.
const (
	CoreCalendar = ols.CoreCalendar
	CoreHeap     = ols.CoreHeap
)

// SyncOptions tunes the clock-synchronization master.
type SyncOptions struct {
	// Period is the polling round period; 0 disables synchronization.
	Period time.Duration
	// ProbesPerSlave is the probes per slave per round (default 5).
	ProbesPerSlave int
	// Threshold is the average-relative-skew bound (µs) below which the
	// damped correction applies (default 100).
	Threshold int64
	// Damping is the fixed portion applied below the threshold
	// (default 0.7, the paper's value).
	Damping float64
	// MaxRTT discards probes with round trips above this bound (µs).
	MaxRTT int64
	// UncertaintyBound, when > 0, switches the master to model-based
	// probe scheduling: each slave carries a drift + offset estimator,
	// corrections extrapolate from estimated drift between probes, and
	// a slave is probed only when its predicted one-σ offset
	// uncertainty (µs) crosses this bound. See TUNING.md, "The probe
	// budget".
	UncertaintyBound int64
	// MinProbeInterval and MaxProbeInterval bracket the per-slave probe
	// gap (µs) under model-based scheduling. Zero values pick the
	// clocksync defaults.
	MinProbeInterval int64
	MaxProbeInterval int64
}

// PICLOptions configures trace-file output.
type PICLOptions struct {
	// W receives the trace lines.
	W io.Writer
	// Relative selects floating-point seconds since start rather than
	// absolute microseconds of UTC.
	Relative bool
	// Start is the µs instant used as second-zero in relative mode.
	Start int64
}

// SubscribeOptions configures the manager's read-side subscription
// engine: a consumer layer tapped into the post-merge sorted stream that
// serves streaming subscribers (/subscribe), bounded catch-up queries
// (/query) and top-K frequency summaries (/topk) out of a sharded
// in-memory hot window, without perturbing the ingest path. The zero
// value is a working configuration; see TUNING.md for sizing the window
// against the memory budget.
type SubscribeOptions struct {
	// Shards is the hot-window shard count (power of two, max 64;
	// default 8).
	Shards int
	// WindowBytes is the hot window's byte budget across shards
	// (default 8 MiB).
	WindowBytes int
	// WindowTTL bounds entry age (default 30 s; negative disables).
	WindowTTL time.Duration
	// BatchRecords caps entries copied per shard lock hold on reads
	// (default 256).
	BatchRecords int
	// SketchWidth and SketchDepth size the count-min sketch behind
	// /topk (defaults 1024 and 4).
	SketchWidth, SketchDepth int
	// TopK is the number of heavy-hitter candidates tracked per
	// dimension (default 16).
	TopK int
}

// ManagerOptions configures StartManager. The zero value listens on an
// ephemeral localhost port with default tuning.
type ManagerOptions struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Clock is the manager clock (default: system clock).
	Clock Clock
	// Sorter tunes the on-line sorter.
	Sorter SorterOptions
	// OLSShards is the number of independent on-line sorter shards.
	// Sources are partitioned across shards and the shard outputs are
	// recombined through a timestamp-keyed k-way merge before causal
	// matching and sink fan-out, so record ingestion scales with cores.
	// 0 or 1 keeps the single sorter (the exact unsharded behaviour);
	// negative means one shard per CPU.
	OLSShards int
	// Sync tunes the clock-synchronization master.
	Sync SyncOptions
	// CRETimeout bounds retention of unmatched causal records (µs).
	CRETimeout int64
	// MergeInterval is the merger wake period (default 5 ms) — the
	// manager-side latency knob.
	MergeInterval time.Duration
	// BufferRecords is the consumer memory-buffer capacity (default
	// 65536 records).
	BufferRecords int
	// DecodeQueueDepth is the per-session decode-worker queue depth in
	// batches (default 4). Deeper queues absorb burstier sessions before
	// TCP backpressure engages; each slot can pin one batch payload.
	DecodeQueueDepth int
	// SinkBatchRecords caps how many sorted records accumulate before the
	// sinks are flushed mid-extraction (default 512). Larger batches
	// amortize sink locking; smaller ones bound sink-visible latency.
	SinkBatchRecords int
	// HeartbeatInterval is the per-sensor PING period for dead-peer
	// detection (default 1 s; negative disables).
	HeartbeatInterval time.Duration
	// SessionRetention bounds how long a disconnected sensor's session
	// (node id + dedupe state) is kept for resumption (default 2 min;
	// negative drops sessions immediately).
	SessionRetention time.Duration
	// PICL, when non-nil, enables trace-file output.
	PICL *PICLOptions
	// Subscribe, when non-nil, enables the read-side subscription
	// engine (see Manager.Subscriptions and Manager.MountSubscribe).
	Subscribe *SubscribeOptions
	// Filter, when non-nil, selects which sorted records reach the
	// sinks. See FilterEvents for the common case of selecting event
	// classes. The filter runs after sorting and causal repair.
	Filter func(rec *Record) bool
	// Logf receives diagnostics (default: standard log package).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, is the registry the manager registers its
	// series in; nil gives the manager a private registry, readable via
	// Manager.Metrics.
	Metrics *Metrics
	// TraceSampleEvery is the pipeline stage tracer's sampling period
	// (every Nth record's age is measured per stage). 0 means the
	// default (64); negative disables tracing.
	TraceSampleEvery int
	// AckHighWater gates data acknowledgements on sorter admission: when
	// the sorter holds at least this many records, the manager stops
	// acknowledging (and granting credit to) its sensors until the
	// backlog drains to AckLowWater. 0 derives ¾ of Sorter.MaxBuffered
	// (flow control stays off when that is also 0); negative disables
	// ack gating explicitly.
	AckHighWater int
	// AckLowWater is the reopen threshold of the ack gate (default half
	// of AckHighWater).
	AckLowWater int
	// MaxCreditWindow caps the per-sensor credit grant carried on each
	// acknowledgement (default 4096 records).
	MaxCreditWindow int
}

// FilterEvents returns a Filter passing only the given event classes —
// the "specify what to monitor" convenience for ManagerOptions.Filter.
func FilterEvents(classes ...uint8) func(*Record) bool {
	var wanted [256]bool
	for _, c := range classes {
		wanted[c] = true
	}
	return func(r *Record) bool { return wanted[r.Event] }
}

// ManagerStats snapshots the manager's counters.
type ManagerStats = ism.Stats

// Manager is a running instrumentation-system manager.
type Manager struct {
	inner *ism.Manager
	disp  *visual.Dispatcher
	sub   *subscribe.Engine
}

// StartManager creates and starts a manager.
func StartManager(opts ManagerOptions) (*Manager, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	var eng *subscribe.Engine
	if opts.Subscribe != nil {
		// The engine's series land in the same registry as the
		// manager's, so one observability endpoint serves both.
		if opts.Metrics == nil {
			opts.Metrics = NewMetrics()
		}
		eng = subscribe.New(subscribe.Config{
			Shards:       opts.Subscribe.Shards,
			WindowBytes:  opts.Subscribe.WindowBytes,
			WindowTTL:    opts.Subscribe.WindowTTL,
			BatchRecords: opts.Subscribe.BatchRecords,
			SketchWidth:  opts.Subscribe.SketchWidth,
			SketchDepth:  opts.Subscribe.SketchDepth,
			TopK:         opts.Subscribe.TopK,
			Metrics:      opts.Metrics,
		})
	}
	cfg := ism.Config{
		Addr:  opts.Addr,
		Clock: opts.Clock,
		Sorter: ols.Config{
			InitialT:    opts.Sorter.InitialT,
			MinT:        opts.Sorter.MinT,
			MaxT:        opts.Sorter.MaxT,
			HalfLife:    opts.Sorter.HalfLife,
			Grow:        opts.Sorter.Policy.grow(),
			MaxBuffered: opts.Sorter.MaxBuffered,
			SourceQuota: opts.Sorter.SourceQuota,
			Core:        opts.Sorter.Core,
		},
		OLSShards:        opts.OLSShards,
		AckHighWater:     opts.AckHighWater,
		AckLowWater:      opts.AckLowWater,
		MaxCreditWindow:  opts.MaxCreditWindow,
		CRETimeout:       opts.CRETimeout,
		MergeInterval:    opts.MergeInterval,
		BufferRecords:    opts.BufferRecords,
		DecodeQueueDepth: opts.DecodeQueueDepth,
		SinkBatchRecords: opts.SinkBatchRecords,
		Sync: clocksync.Config{
			ProbesPerSlave:   opts.Sync.ProbesPerSlave,
			Threshold:        opts.Sync.Threshold,
			Damping:          opts.Sync.Damping,
			MaxRTT:           opts.Sync.MaxRTT,
			UncertaintyBound: opts.Sync.UncertaintyBound,
			MinProbeInterval: opts.Sync.MinProbeInterval,
			MaxProbeInterval: opts.Sync.MaxProbeInterval,
		},
		SyncPeriod:        opts.Sync.Period,
		HeartbeatInterval: opts.HeartbeatInterval,
		SessionRetention:  opts.SessionRetention,
		Filter:            opts.Filter,
		Logf:              opts.Logf,
		Metrics:           opts.Metrics,
		TraceSampleEvery:  opts.TraceSampleEvery,
	}
	if opts.PICL != nil {
		mode := picl.TimeUTC
		if opts.PICL.Relative {
			mode = picl.TimeRelative
		}
		cfg.PICL = picl.NewWriter(opts.PICL.W, mode, opts.PICL.Start)
	}
	disp := visual.NewDispatcher()
	cfg.Visual = disp
	if eng != nil {
		cfg.Tap = eng
	}
	m, err := ism.New(cfg)
	if err != nil {
		return nil, err
	}
	m.Start()
	return &Manager{inner: m, disp: disp, sub: eng}, nil
}

// Addr returns the manager's bound TCP address, which nodes connect to.
func (m *Manager) Addr() string { return m.inner.Addr() }

// Stats snapshots the manager's counters.
func (m *Manager) Stats() ManagerStats { return m.inner.Stats() }

// Metrics returns the registry holding the manager's series — the one
// passed in ManagerOptions.Metrics, or the manager's private registry.
// Serve it with ServeObservability.
func (m *Manager) Metrics() *Metrics { return m.inner.Metrics() }

// SyncNow requests an immediate clock-synchronization round.
func (m *Manager) SyncNow() { m.inner.SyncRound() }

// AttachVisual connects a remote visual object at addr (served by a
// visual.Server, see cmd/briskview) under the given object name; every
// sorted record is then delivered to it as a PICL string.
func (m *Manager) AttachVisual(addr, object string, queue int) error {
	r, err := visual.Dial(addr, object, queue)
	if err != nil {
		return err
	}
	m.disp.Attach(r)
	return nil
}

// Consume returns a consumer positioned at the oldest retained record of
// the manager's memory buffer.
func (m *Manager) Consume() *Consumer {
	return &Consumer{cur: m.inner.NewCursor()}
}

// SubscriptionEngine is the read-side subscription engine created when
// ManagerOptions.Subscribe is set: programmatic subscriptions
// (Engine.Subscribe / Subscription.Next), bounded queries (Engine.Query)
// and top-K summaries, plus the HTTP handlers MountSubscribe wires up.
type SubscriptionEngine = subscribe.Engine

// Subscription is one attached reader of the sorted stream.
type Subscription = subscribe.Subscription

// SubscribeFilter is a compiled subscription filter; build one with
// ParseSubscribeFilter. A nil filter matches everything.
type SubscribeFilter = subscribe.Filter

// ParseSubscribeFilter compiles a filter expression — a conjunction of
// clauses like "node=1,2 event=5 ts>=1000 f0>3.5" (see OBSERVABILITY.md
// for the grammar). The empty expression matches everything.
func ParseSubscribeFilter(expr string) (*SubscribeFilter, error) {
	return subscribe.ParseFilter(expr)
}

// Subscriptions returns the manager's read-side subscription engine, or
// nil when ManagerOptions.Subscribe was not set. Use it to attach
// programmatic subscribers (Engine.Subscribe), run bounded queries, or
// mount its HTTP API; MountSubscribe covers the common case.
func (m *Manager) Subscriptions() *SubscriptionEngine { return m.sub }

// MountSubscribe registers the subscription API on an observability
// server: /subscribe (streaming NDJSON), /query (bounded window) and
// /topk (sketch heavy hitters). Returns false when the manager was
// started without SubscribeOptions.
func (m *Manager) MountSubscribe(srv *ObservabilityServer) bool {
	if m.sub == nil {
		return false
	}
	srv.Handle("/subscribe", http.HandlerFunc(m.sub.ServeSubscribe))
	srv.Handle("/query", http.HandlerFunc(m.sub.ServeQuery))
	srv.Handle("/topk", http.HandlerFunc(m.sub.ServeTopK))
	return true
}

// Close shuts the manager down, flushing the sorter and every sink.
// Streaming subscribers receive everything flushed, then a clean
// end-of-stream.
func (m *Manager) Close() error {
	err := m.inner.Close()
	if m.sub != nil {
		// After inner.Close the merger has flushed its final batch
		// through the tap; closing the engine lets subscribers drain
		// what they can reach and then see io.EOF.
		m.sub.Close()
	}
	if cerr := m.disp.Close(); err == nil {
		err = cerr
	}
	return err
}

// decodeBuffered decodes a memory-buffer entry (node prefix + record).
func decodeBuffered(p []byte) (Record, error) {
	return ism.DecodeBuffered(p)
}
